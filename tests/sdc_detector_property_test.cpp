#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "gen/circuit.hpp"
#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "krylov/arnoldi.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"

namespace sdc = sdcgmres::sdc;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;
namespace sparse = sdcgmres::sparse;

namespace {


/// Start vector exciting (generically) all eigenvectors; a constant vector
/// spans a tiny invariant subspace on the Poisson grids.
la::Vector generic_vector(std::size_t n) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + 0.3) +
           0.01 * static_cast<double>(i % 13);
  }
  return v;
}

sparse::CsrMatrix make_matrix(const std::string& name) {
  if (name == "poisson") return gen::poisson2d(8);
  if (name == "convection") return gen::convection_diffusion2d(8, 30.0, -5.0);
  gen::CircuitOptions opts;
  opts.nodes = 200;
  return gen::circuit_like(opts);
}

} // namespace

/// Completeness sweep: a class-1 fault injected at *any* site and either
/// MGS position is always detected (when the faulted coefficient is not
/// one of the structurally-zero tridiagonal entries, whose scaled value
/// remains below the bound -- those faults are inert, not missed).
class DetectorCompleteness
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(DetectorCompleteness, Class1FaultsDetectedOrInert) {
  const auto [name, pos_int] = GetParam();
  const auto position = static_cast<sdc::MgsPosition>(pos_int);
  const auto A = make_matrix(name);
  const krylov::CsrOperator op(A);
  const double bound = A.frobenius_norm();
  const std::size_t steps = 12;

  // Sites: every Arnoldi iteration of a 12-step run.
  for (std::size_t site = 0; site < steps; ++site) {
    sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
        site, position, sdc::fault_classes::very_large()));
    sdc::HessenbergBoundDetector detector(bound);
    krylov::HookChain chain({&campaign, &detector});
    (void)krylov::arnoldi(op, generic_vector(A.rows()), steps,
                          krylov::Orthogonalization::MGS, &chain);
    if (!campaign.fired()) continue;
    const auto& e = campaign.log().events()[0];
    const bool fault_escaped_bound = std::abs(e.value_after) > bound;
    EXPECT_EQ(detector.triggered(), fault_escaped_bound)
        << name << " site " << site;
    // And whenever the corrupted value exceeds the bound, it IS caught:
    if (fault_escaped_bound) {
      EXPECT_TRUE(detector.triggered());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMatricesBothPositions, DetectorCompleteness,
    ::testing::Combine(::testing::Values("poisson", "convection", "circuit"),
                       ::testing::Values(0, 1)), // First, Last
    [](const ::testing::TestParamInfo<std::tuple<std::string, int>>& info) {
      return std::get<0>(info.param) +
             (std::get<1>(info.param) == 0 ? "_first" : "_last");
    });

/// Soundness sweep: with no faults, the detector never fires, for any
/// matrix family, orthogonalization variant, and basis size.
class DetectorSoundness
    : public ::testing::TestWithParam<
          std::tuple<std::string, krylov::Orthogonalization, std::size_t>> {};

TEST_P(DetectorSoundness, NoFalsePositivesEver) {
  const auto [name, ortho, steps] = GetParam();
  const auto A = make_matrix(name);
  const krylov::CsrOperator op(A);
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  (void)krylov::arnoldi(op, generic_vector(A.rows()), steps, ortho, &detector);
  EXPECT_EQ(detector.detections(), 0u)
      << name << "/" << krylov::to_string(ortho) << "/" << steps;
  EXPECT_GT(detector.checks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetectorSoundness,
    ::testing::Combine(::testing::Values("poisson", "convection", "circuit"),
                       ::testing::Values(krylov::Orthogonalization::MGS,
                                         krylov::Orthogonalization::CGS,
                                         krylov::Orthogonalization::CGS2),
                       ::testing::Values(std::size_t{5}, std::size_t{25})),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, krylov::Orthogonalization, std::size_t>>&
           info) {
      return std::get<0>(info.param) + "_" +
             krylov::to_string(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param));
    });

/// Detectability frontier: scan fault magnitudes; detection must be
/// monotone in the scale factor -- exactly the "we know what we can and
/// cannot detect" property (paper Section V-C).
class DetectorFrontier : public ::testing::TestWithParam<std::string> {};

TEST_P(DetectorFrontier, DetectionIsMonotoneInFaultMagnitude) {
  const auto A = make_matrix(GetParam());
  const krylov::CsrOperator op(A);
  const double bound = A.frobenius_norm();
  bool previously_detected = false;
  // Increasing multiplicative magnitudes on the *last* MGS coefficient of
  // iteration 1 (a genuinely nonzero coefficient).
  for (const double magnitude : {1e-2, 1.0, 1e2, 1e4, 1e8, 1e16, 1e100}) {
    sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
        1, sdc::MgsPosition::Last, sdc::FaultModel::scale(magnitude)));
    sdc::HessenbergBoundDetector detector(bound);
    krylov::HookChain chain({&campaign, &detector});
    (void)krylov::arnoldi(op, generic_vector(A.rows()), 4,
                          krylov::Orthogonalization::MGS, &chain);
    ASSERT_TRUE(campaign.fired());
    if (previously_detected) {
      EXPECT_TRUE(detector.triggered())
          << "detection lost at larger magnitude " << magnitude;
    }
    previously_detected = detector.triggered();
  }
  EXPECT_TRUE(previously_detected); // the largest fault is always caught
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, DetectorFrontier,
                         ::testing::Values("poisson", "convection",
                                           "circuit"));
