#include <gtest/gtest.h>

#include <cmath>

#include "dense/givens.hpp"

namespace dense = sdcgmres::dense;

TEST(Givens, ZeroBGivesIdentity) {
  const auto g = dense::make_givens(3.0, 0.0);
  EXPECT_EQ(g.c, 1.0);
  EXPECT_EQ(g.s, 0.0);
}

TEST(Givens, ZeroAGivesSwap) {
  const auto g = dense::make_givens(0.0, 2.0);
  EXPECT_EQ(g.c, 0.0);
  EXPECT_EQ(g.s, 1.0);
}

TEST(Givens, AnnihilatesSecondComponent) {
  double a = 3.0, b = 4.0;
  const auto g = dense::make_givens(a, b);
  g.apply(a, b);
  EXPECT_NEAR(a, 5.0, 1e-15);
  EXPECT_NEAR(b, 0.0, 1e-15);
}

TEST(Givens, PreservesTwoNorm) {
  double a = -7.25, b = 2.5;
  const double norm_before = std::hypot(a, b);
  const auto g = dense::make_givens(a, b);
  g.apply(a, b);
  EXPECT_NEAR(std::hypot(a, b), norm_before, 1e-14);
}

TEST(Givens, RotationIsOrthogonal) {
  const auto g = dense::make_givens(1.5, -2.5);
  EXPECT_NEAR(g.c * g.c + g.s * g.s, 1.0, 1e-15);
}

TEST(Givens, HandlesHugeInputsWithoutOverflow) {
  // A naive sqrt(a^2 + b^2) overflows for the paper's 1e150-scaled faulty
  // entries; the hypot formulation must not.
  double a = 1e200, b = 1e200;
  const auto g = dense::make_givens(a, b);
  EXPECT_TRUE(std::isfinite(g.c));
  EXPECT_TRUE(std::isfinite(g.s));
  g.apply(a, b);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_NEAR(b, 0.0, 1e185); // relative to the 1e200 scale
}

TEST(Givens, HandlesTinyInputsWithoutUnderflow) {
  double a = 1e-300, b = 1e-300;
  const auto g = dense::make_givens(a, b);
  EXPECT_NEAR(g.c * g.c + g.s * g.s, 1.0, 1e-15);
  g.apply(a, b);
  EXPECT_NEAR(b, 0.0, 1e-310);
  EXPECT_GT(a, 0.0);
}

TEST(Givens, SignConventionKeepsRNonNegativeForPositiveA) {
  double a = 2.0, b = -1.0;
  const auto g = dense::make_givens(a, b);
  g.apply(a, b);
  EXPECT_GT(a, 0.0);
  EXPECT_NEAR(b, 0.0, 1e-15);
}

TEST(Givens, ApplyRotatesArbitraryPair) {
  const auto g = dense::make_givens(1.0, 1.0); // 45-degree rotation
  double x = 1.0, y = 0.0;
  g.apply(x, y);
  EXPECT_NEAR(x, std::sqrt(0.5), 1e-15);
  EXPECT_NEAR(y, -std::sqrt(0.5), 1e-15);
}
