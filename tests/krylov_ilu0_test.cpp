#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/cg.hpp"
#include "krylov/gmres.hpp"
#include "krylov/ilu0.hpp"
#include "la/blas1.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;
namespace sparse = sdcgmres::sparse;

TEST(Ilu0, ExactForTriangularMatrix) {
  // A lower/upper triangular matrix has no fill, so ILU(0) == LU and the
  // preconditioner is an exact inverse.
  sparse::CooMatrix coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 4.0);
  coo.add(2, 1, -1.0);
  coo.add(2, 2, 5.0);
  const sparse::CsrMatrix A{std::move(coo)};
  const krylov::Ilu0Preconditioner M(A);
  const la::Vector x_true{1.0, -2.0, 0.5};
  const la::Vector b = A.apply(x_true);
  la::Vector z;
  M.apply(b, z);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(z[i], x_true[i], 1e-14);
  }
}

TEST(Ilu0, ExactForTridiagonalMatrix) {
  // Tridiagonal matrices also incur no fill: ILU(0) is a direct solver.
  const auto A = gen::poisson1d(20);
  const krylov::Ilu0Preconditioner M(A);
  const la::Vector x_true = la::iota(20, 0.1);
  const la::Vector b = A.apply(x_true);
  la::Vector z;
  M.apply(b, z);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(z[i], x_true[i], 1e-10);
  }
}

TEST(Ilu0, RejectsMissingDiagonal) {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0); // no (1,1) entry
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_THROW(krylov::Ilu0Preconditioner{A}, std::invalid_argument);
}

TEST(Ilu0, RejectsRectangular) {
  sparse::CooMatrix coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_THROW(krylov::Ilu0Preconditioner{A}, std::invalid_argument);
}

TEST(Ilu0, RejectsZeroPivot) {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 0.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 1.0);
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_THROW(krylov::Ilu0Preconditioner{A}, std::invalid_argument);
}

TEST(Ilu0, ApplySizeMismatchThrows) {
  const auto A = gen::poisson1d(5);
  const krylov::Ilu0Preconditioner M(A);
  la::Vector z;
  EXPECT_THROW(M.apply(la::Vector(4), z), std::invalid_argument);
}

TEST(Ilu0, AcceleratesGmresOnConvectionDiffusion) {
  const auto A = gen::convection_diffusion2d(16, 30.0, -10.0);
  const la::Vector b = la::ones(A.rows());

  krylov::GmresOptions plain;
  plain.max_iters = 500;
  plain.tol = 1e-10;
  const auto res_plain = krylov::gmres(A, b, plain);

  const krylov::Ilu0Preconditioner ilu(A);
  krylov::GmresOptions pre = plain;
  pre.right_precond = &ilu;
  const auto res_pre = krylov::gmres(A, b, pre);

  ASSERT_EQ(res_plain.status, krylov::SolveStatus::Converged);
  ASSERT_EQ(res_pre.status, krylov::SolveStatus::Converged);
  EXPECT_LT(res_pre.iterations, res_plain.iterations / 2);
}

TEST(Ilu0, AcceleratesCgOnPoisson) {
  const auto A = gen::poisson2d(16);
  const la::Vector b = la::ones(A.rows());

  krylov::CgOptions plain;
  plain.tol = 1e-10;
  plain.max_iters = 2000;
  const auto res_plain = krylov::cg(A, b, plain);

  const krylov::Ilu0Preconditioner ilu(A);
  krylov::CgOptions pre = plain;
  pre.precond = &ilu;
  const auto res_pre = krylov::cg(A, b, pre);

  ASSERT_TRUE(res_plain.converged);
  ASSERT_TRUE(res_pre.converged);
  EXPECT_LT(res_pre.iterations, res_plain.iterations);
}

TEST(Ilu0, FactorResidualIsSmallOnPattern) {
  // (LU)_ij == A_ij on the sparsity pattern of A (the defining ILU(0)
  // property), checked entry-wise through the combined storage.
  const auto A = gen::poisson2d(6);
  const krylov::Ilu0Preconditioner M(A);
  // Apply M to each unit vector and multiply back: A * (M^{-1} b) ~ b is
  // only approximate, but for the tridiagonal-free Poisson pattern the
  // product LU must reproduce A's action up to the dropped fill; verify
  // the preconditioned residual is far smaller than the unpreconditioned
  // one for a generic vector.
  const la::Vector b = la::iota(36, 0.05);
  la::Vector z;
  M.apply(b, z);
  la::Vector az = A.apply(z);
  la::axpy(-1.0, b, az);
  EXPECT_LT(la::nrm2(az), 0.5 * la::nrm2(b));
}
