#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "dense/condition.hpp"
#include "dense/svd.hpp"
#include "la/dense_matrix.hpp"

namespace dense = sdcgmres::dense;
namespace la = sdcgmres::la;

namespace {

/// Feed the estimator the columns of upper-triangular \p R (k x k,
/// column-major la::DenseMatrix with zeros below the diagonal).
void feed(dense::IncrementalConditionEstimator& ice, const la::DenseMatrix& R) {
  std::vector<double> col;
  for (std::size_t j = 0; j < R.cols(); ++j) {
    col.assign(R.col(j), R.col(j) + j + 1);
    ice.update({col.data(), j + 1});
  }
}

/// Exact sigma_min/sigma_max via the Jacobi SVD test oracle.
std::pair<double, double> exact_extremes(const la::DenseMatrix& R) {
  const auto svd = dense::jacobi_svd(R);
  return {svd.sigma[R.cols() - 1], svd.sigma[0]};
}

la::DenseMatrix random_triangular(std::size_t k, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  la::DenseMatrix R(k, k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i <= j; ++i) {
      R.col(j)[i] = i == j ? 0.5 + std::abs(u(rng)) : u(rng);
    }
  }
  return R;
}

} // namespace

TEST(IncrementalCondition, FirstColumnIsExact) {
  dense::IncrementalConditionEstimator ice;
  const std::vector<double> col{-3.5};
  ice.update({col.data(), 1});
  EXPECT_DOUBLE_EQ(ice.sigma_min(), 3.5);
  EXPECT_DOUBLE_EQ(ice.sigma_max(), 3.5);
  EXPECT_DOUBLE_EQ(ice.ratio(), 1.0);
}

TEST(IncrementalCondition, DiagonalMatrixIsExact) {
  // For a diagonal R the 2x2 form decouples (beta = 0 at every step), so
  // the estimates equal the true extreme singular values exactly.
  dense::IncrementalConditionEstimator ice;
  const std::vector<double> diag{2.0, 0.5, 4.0, 1.0};
  la::DenseMatrix R(4, 4);
  for (std::size_t j = 0; j < 4; ++j) R.col(j)[j] = diag[j];
  feed(ice, R);
  EXPECT_DOUBLE_EQ(ice.sigma_min(), 0.5);
  EXPECT_DOUBLE_EQ(ice.sigma_max(), 4.0);
  EXPECT_DOUBLE_EQ(ice.ratio(), 0.125);
}

TEST(IncrementalCondition, BoundsTheExactSingularValues) {
  // The defining property: sigma~max <= sigma_max, sigma~min >= sigma_min,
  // hence ratio() upper-bounds the true ratio.  Verified against the
  // jacobi_svd oracle over many random triangular factors.
  for (unsigned seed = 1; seed <= 20; ++seed) {
    const std::size_t k = 2 + seed % 9;
    const la::DenseMatrix R = random_triangular(k, seed);
    dense::IncrementalConditionEstimator ice;
    ice.reserve(k);
    feed(ice, R);
    const auto [smin, smax] = exact_extremes(R);
    const double tol = 1e-12 * smax;
    EXPECT_LE(ice.sigma_max(), smax + tol) << "seed " << seed;
    EXPECT_GE(ice.sigma_min(), smin - tol) << "seed " << seed;
    EXPECT_GE(ice.ratio() + 1e-12, smin / smax) << "seed " << seed;
    EXPECT_GT(ice.ratio(), 0.0);
    EXPECT_LE(ice.ratio(), 1.0);
    // The estimates should also be USEFUL, not vacuous: each is attained
    // by a unit vector, so it lies within the exact extremes.
    EXPECT_GE(ice.sigma_max() + tol, smin) << "seed " << seed;
    EXPECT_LE(ice.sigma_min() - tol, smax) << "seed " << seed;
  }
}

TEST(IncrementalCondition, TracksNearSingularFactors) {
  // A factor with a ~zero trailing diagonal entry: the minimizing vector
  // can pick e_k, so sigma~min drops to ~|gamma| and the ratio collapses
  // -- exactly the signal FGMRES monitors.
  la::DenseMatrix R = random_triangular(6, 7);
  R.col(5)[5] = 1e-14;
  dense::IncrementalConditionEstimator ice;
  feed(ice, R);
  EXPECT_LT(ice.ratio(), 1e-12);
}

TEST(IncrementalCondition, PopRestoresThePriorState) {
  const la::DenseMatrix R = random_triangular(5, 3);
  dense::IncrementalConditionEstimator ice;
  std::vector<double> col;
  for (std::size_t j = 0; j < 4; ++j) {
    col.assign(R.col(j), R.col(j) + j + 1);
    ice.update({col.data(), j + 1});
  }
  const double smin4 = ice.sigma_min();
  const double smax4 = ice.sigma_max();
  col.assign(R.col(4), R.col(4) + 5);
  ice.update({col.data(), 5});
  ice.pop();
  EXPECT_EQ(ice.size(), 4u);
  EXPECT_EQ(ice.sigma_min(), smin4);
  EXPECT_EQ(ice.sigma_max(), smax4);
  // Re-applying the popped column lands where the straight-through run
  // does (the retry path's requirement).
  ice.update({col.data(), 5});
  dense::IncrementalConditionEstimator straight;
  feed(straight, R);
  EXPECT_EQ(ice.sigma_min(), straight.sigma_min());
  EXPECT_EQ(ice.sigma_max(), straight.sigma_max());
}

TEST(IncrementalCondition, PopTwiceWithoutUpdateThrows) {
  dense::IncrementalConditionEstimator ice;
  EXPECT_THROW(ice.pop(), std::logic_error);
  const std::vector<double> col{1.0};
  ice.update({col.data(), 1});
  ice.pop();
  EXPECT_EQ(ice.size(), 0u);
  EXPECT_THROW(ice.pop(), std::logic_error);
}

TEST(IncrementalCondition, ResetClearsEverything) {
  dense::IncrementalConditionEstimator ice;
  const std::vector<double> col{2.0};
  ice.update({col.data(), 1});
  ice.reset();
  EXPECT_EQ(ice.size(), 0u);
  EXPECT_DOUBLE_EQ(ice.ratio(), 1.0);
  ice.update({col.data(), 1}); // usable again
  EXPECT_DOUBLE_EQ(ice.sigma_max(), 2.0);
}

TEST(IncrementalCondition, SizeMismatchThrows) {
  dense::IncrementalConditionEstimator ice;
  const std::vector<double> col{1.0, 2.0};
  EXPECT_THROW(ice.update({col.data(), 2}), std::invalid_argument);
}
