#include <gtest/gtest.h>

#include <cmath>

#include "dense/lsq_policies.hpp"

namespace dense = sdcgmres::dense;
namespace la = sdcgmres::la;

namespace {

la::DenseMatrix well_conditioned() {
  la::DenseMatrix R(2, 2);
  R(0, 0) = 2.0;
  R(0, 1) = 1.0;
  R(1, 1) = 3.0;
  return R;
}

la::DenseMatrix singular_r() {
  la::DenseMatrix R(2, 2);
  R(0, 0) = 1.0;
  R(0, 1) = 1.0;
  R(1, 1) = 0.0; // exactly singular
  return R;
}

} // namespace

TEST(LsqPolicies, NamesAreStable) {
  EXPECT_STREQ(dense::to_string(dense::LsqPolicy::Standard), "standard");
  EXPECT_STREQ(dense::to_string(dense::LsqPolicy::Fallback),
               "fallback-on-nonfinite");
  EXPECT_STREQ(dense::to_string(dense::LsqPolicy::RankRevealing),
               "rank-revealing");
}

TEST(LsqPolicies, AllPoliciesAgreeOnWellConditionedSystem) {
  const la::DenseMatrix R = well_conditioned();
  const la::Vector z{4.0, 6.0}; // solution [1; 2]
  for (const auto policy :
       {dense::LsqPolicy::Standard, dense::LsqPolicy::Fallback,
        dense::LsqPolicy::RankRevealing}) {
    const auto out = dense::solve_projected(R, z, policy);
    EXPECT_NEAR(out.y[0], 1.0, 1e-12) << dense::to_string(policy);
    EXPECT_NEAR(out.y[1], 2.0, 1e-12) << dense::to_string(policy);
    EXPECT_FALSE(out.nonfinite);
    EXPECT_FALSE(out.fallback_triggered);
  }
}

TEST(LsqPolicies, StandardProducesNonfiniteOnSingularR) {
  const auto out = dense::solve_projected(singular_r(), la::Vector{1.0, 1.0},
                                          dense::LsqPolicy::Standard);
  EXPECT_TRUE(out.nonfinite);
}

TEST(LsqPolicies, FallbackRecoversFromSingularR) {
  const auto out = dense::solve_projected(singular_r(), la::Vector{1.0, 1.0},
                                          dense::LsqPolicy::Fallback);
  EXPECT_TRUE(out.fallback_triggered);
  EXPECT_FALSE(out.nonfinite);
  EXPECT_LT(out.effective_rank, 2u);
}

TEST(LsqPolicies, FallbackDoesNotTriggerWhenStandardSucceeds) {
  const auto out = dense::solve_projected(well_conditioned(),
                                          la::Vector{1.0, 1.0},
                                          dense::LsqPolicy::Fallback);
  EXPECT_FALSE(out.fallback_triggered);
  EXPECT_EQ(out.effective_rank, 2u);
}

TEST(LsqPolicies, RankRevealingTruncatesSingularDirection) {
  const auto out = dense::solve_projected(singular_r(), la::Vector{1.0, 1.0},
                                          dense::LsqPolicy::RankRevealing);
  EXPECT_FALSE(out.nonfinite);
  EXPECT_EQ(out.effective_rank, 1u);
  EXPECT_TRUE(std::isfinite(out.y[0]));
  EXPECT_TRUE(std::isfinite(out.y[1]));
}

TEST(LsqPolicies, RankRevealingBoundsNearlySingularCoefficients) {
  // Paper Section VI-D: a nearly singular R must not produce unboundedly
  // large update coefficients under the rank-revealing policy.
  la::DenseMatrix R(2, 2);
  R(0, 0) = 1.0;
  R(0, 1) = 1.0;
  R(1, 1) = 1e-14;
  const la::Vector z{1.0, 1.0};

  const auto standard =
      dense::solve_projected(R, z, dense::LsqPolicy::Standard);
  EXPECT_GT(std::abs(standard.y[1]), 1e13); // unbounded coefficients

  const auto robust =
      dense::solve_projected(R, z, dense::LsqPolicy::RankRevealing, 1e-8);
  EXPECT_LT(std::abs(robust.y[0]) + std::abs(robust.y[1]), 10.0);
}

TEST(LsqPolicies, FallbackConcealsLargeButFiniteCoefficients) {
  // The paper's criticism of policy 2: when the standard solve produces
  // huge-but-finite coefficients, the fallback never fires and the error
  // is not bounded.
  la::DenseMatrix R(2, 2);
  R(0, 0) = 1.0;
  R(0, 1) = 1.0;
  R(1, 1) = 1e-14;
  const auto out = dense::solve_projected(R, la::Vector{1.0, 1.0},
                                          dense::LsqPolicy::Fallback, 1e-8);
  EXPECT_FALSE(out.fallback_triggered);
  EXPECT_GT(std::abs(out.y[1]), 1e13);
}

TEST(LsqPolicies, TruncationToleranceIsRespected) {
  la::DenseMatrix R(2, 2);
  R(0, 0) = 1.0;
  R(1, 1) = 1e-4;
  const la::Vector z{1.0, 1.0};
  // Loose cutoff truncates the 1e-4 singular value...
  const auto loose =
      dense::solve_projected(R, z, dense::LsqPolicy::RankRevealing, 1e-2);
  EXPECT_EQ(loose.effective_rank, 1u);
  // ...a tight cutoff keeps it.
  const auto tight =
      dense::solve_projected(R, z, dense::LsqPolicy::RankRevealing, 1e-6);
  EXPECT_EQ(tight.effective_rank, 2u);
  EXPECT_NEAR(tight.y[1], 1e4, 1.0);
}
