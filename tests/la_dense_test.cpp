#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "la/blas2.hpp"
#include "la/dense_matrix.hpp"

namespace la = sdcgmres::la;

TEST(DenseMatrix, ZeroInitialized) {
  la::DenseMatrix m(2, 3);
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(m(i, j), 0.0);
    }
  }
}

TEST(DenseMatrix, ColumnMajorStorage) {
  la::DenseMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 0) = 2.0;
  m(0, 1) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_EQ(m.data()[0], 1.0);
  EXPECT_EQ(m.data()[1], 2.0); // same column, next row
  EXPECT_EQ(m.data()[2], 3.0); // next column
  EXPECT_EQ(m.col(1)[1], 4.0);
}

TEST(DenseMatrix, Identity) {
  const auto I = la::DenseMatrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(I(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(DenseMatrix, TopLeftBlock) {
  la::DenseMatrix m(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      m(i, j) = static_cast<double>(10 * i + j);
    }
  }
  const auto b = m.top_left(2, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 2u);
  EXPECT_EQ(b(1, 1), 11.0);
}

TEST(DenseMatrix, TopLeftOutOfRangeThrows) {
  la::DenseMatrix m(2, 2);
  EXPECT_THROW((void)m.top_left(3, 1), std::out_of_range);
}

TEST(DenseMatrix, Transposed) {
  la::DenseMatrix m(2, 3);
  m(0, 2) = 5.0;
  m(1, 0) = -1.0;
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 0), 5.0);
  EXPECT_EQ(t(0, 1), -1.0);
}

TEST(DenseMatrix, ReshapeZeroes) {
  la::DenseMatrix m(2, 2);
  m(0, 0) = 1.0;
  m.reshape(3, 1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Blas2Gemv, IdentityActsAsCopy) {
  const auto I = la::DenseMatrix::identity(3);
  la::Vector x{1.0, 2.0, 3.0};
  la::Vector y(3);
  la::gemv(1.0, I, x, 0.0, y);
  EXPECT_EQ(y, x);
}

TEST(Blas2Gemv, AlphaBetaCombination) {
  la::DenseMatrix A(2, 2);
  A(0, 0) = 1.0;
  A(0, 1) = 2.0;
  A(1, 0) = 3.0;
  A(1, 1) = 4.0;
  la::Vector x{1.0, 1.0};
  la::Vector y{10.0, 10.0};
  la::gemv(2.0, A, x, 0.5, y); // y = 2*A*[1,1] + 0.5*[10,10]
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 3.0 + 5.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0 * 7.0 + 5.0);
}

TEST(Blas2Gemv, DimensionMismatchThrows) {
  la::DenseMatrix A(2, 3);
  la::Vector x(2);
  la::Vector y(2);
  EXPECT_THROW(la::gemv(1.0, A, x, 0.0, y), std::invalid_argument);
}

TEST(Blas2GemvT, TransposeAction) {
  la::DenseMatrix A(2, 2);
  A(0, 1) = 1.0; // A = [0 1; 0 0]
  la::Vector x{3.0, 0.0};
  la::Vector y(2);
  la::gemv_t(1.0, A, x, 0.0, y); // y = A^T x = [0; 3]
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[1], 3.0);
}

TEST(Blas2Gemm, MatchesHandComputedProduct) {
  la::DenseMatrix A(2, 2), B(2, 2), C;
  A(0, 0) = 1.0; A(0, 1) = 2.0; A(1, 0) = 3.0; A(1, 1) = 4.0;
  B(0, 0) = 5.0; B(0, 1) = 6.0; B(1, 0) = 7.0; B(1, 1) = 8.0;
  la::gemm(A, B, C);
  EXPECT_DOUBLE_EQ(C(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(C(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(C(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(C(1, 1), 50.0);
}

TEST(Blas2Gemm, InnerDimensionMismatchThrows) {
  la::DenseMatrix A(2, 3), B(2, 2), C;
  EXPECT_THROW(la::gemm(A, B, C), std::invalid_argument);
}

TEST(Blas2Frobenius, KnownValue) {
  la::DenseMatrix A(2, 2);
  A(0, 0) = 3.0;
  A(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(la::frobenius_norm(A), 5.0);
}

TEST(Blas2Orthonormality, IdentityHasZeroDefect) {
  const auto I = la::DenseMatrix::identity(4);
  EXPECT_EQ(la::orthonormality_defect(I), 0.0);
}

TEST(Blas2Orthonormality, ScaledColumnsHaveDefect) {
  la::DenseMatrix A = la::DenseMatrix::identity(2);
  A(0, 0) = 2.0; // first column has norm 2 -> defect |4 - 1| = 3
  EXPECT_DOUBLE_EQ(la::orthonormality_defect(A), 3.0);
}
