#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "krylov/hooks.hpp"

namespace krylov = sdcgmres::krylov;
namespace la = sdcgmres::la;

namespace {

/// Records the order of events and optionally mutates/aborts.
class TraceHook final : public krylov::ArnoldiHook {
public:
  explicit TraceHook(std::string tag, std::vector<std::string>* trace)
      : tag_(std::move(tag)), trace_(trace) {}

  double add_on_coefficient = 0.0;
  bool abort = false;

  void on_solve_begin(std::size_t solve_index) override {
    trace_->push_back(tag_ + ":solve" + std::to_string(solve_index));
  }
  void on_iteration_begin(const krylov::ArnoldiContext& ctx) override {
    trace_->push_back(tag_ + ":iter" + std::to_string(ctx.iteration));
  }
  void on_matvec_result(const krylov::ArnoldiContext&,
                        std::span<double> v) override {
    trace_->push_back(tag_ + ":matvec");
    (void)v;
  }
  void on_power_computed(const krylov::ArnoldiContext&, std::size_t power_index,
                         std::size_t block_size,
                         std::span<double> power) override {
    trace_->push_back(tag_ + ":pow" + std::to_string(power_index) + "/" +
                      std::to_string(block_size));
    (void)power;
  }
  void on_projection_coefficient(const krylov::ArnoldiContext&, std::size_t i,
                                 std::size_t, double& h) override {
    trace_->push_back(tag_ + ":h" + std::to_string(i));
    h += add_on_coefficient;
  }
  void on_subdiagonal(const krylov::ArnoldiContext&, double& h) override {
    trace_->push_back(tag_ + ":sub");
    (void)h;
  }
  [[nodiscard]] bool abort_requested() const override { return abort; }

private:
  std::string tag_;
  std::vector<std::string>* trace_;
};

} // namespace

TEST(HookChain, ForwardsEventsInOrder) {
  std::vector<std::string> trace;
  TraceHook a("a", &trace);
  TraceHook b("b", &trace);
  krylov::HookChain chain({&a, &b});

  chain.on_solve_begin(0);
  krylov::ArnoldiContext ctx{.solve_index = 0, .iteration = 2};
  chain.on_iteration_begin(ctx);
  double h = 1.0;
  chain.on_projection_coefficient(ctx, 0, 1, h);
  chain.on_subdiagonal(ctx, h);
  la::Vector v{0.5};
  chain.on_power_computed(ctx, 1, 4, v.span());

  const std::vector<std::string> expected = {
      "a:solve0", "b:solve0", "a:iter2",   "b:iter2",  "a:h0",
      "b:h0",     "a:sub",    "b:sub",     "a:pow1/4", "b:pow1/4",
  };
  EXPECT_EQ(trace, expected);
}

TEST(HookChain, MutationsComposeLeftToRight) {
  // Chain [inject, detect] semantics rely on the left hook's mutation
  // being visible to the right hook.
  std::vector<std::string> trace;
  TraceHook injector("i", &trace);
  injector.add_on_coefficient = 10.0;

  class Checker final : public krylov::ArnoldiHook {
  public:
    double seen = 0.0;
    void on_projection_coefficient(const krylov::ArnoldiContext&, std::size_t,
                                   std::size_t, double& h) override {
      seen = h;
    }
  } checker;

  krylov::HookChain chain;
  chain.add(&injector);
  chain.add(&checker);
  double h = 1.0;
  chain.on_projection_coefficient({}, 0, 1, h);
  EXPECT_EQ(h, 11.0);
  EXPECT_EQ(checker.seen, 11.0); // checker saw the corrupted value
}

TEST(HookChain, AbortPropagatesFromAnyChild) {
  std::vector<std::string> trace;
  TraceHook a("a", &trace);
  TraceHook b("b", &trace);
  krylov::HookChain chain({&a, &b});
  EXPECT_FALSE(chain.abort_requested());
  b.abort = true;
  EXPECT_TRUE(chain.abort_requested());
  b.abort = false;
  a.abort = true;
  EXPECT_TRUE(chain.abort_requested());
}

TEST(HookChain, EmptyChainIsInert) {
  krylov::HookChain chain;
  double h = 5.0;
  chain.on_projection_coefficient({}, 0, 1, h);
  la::Vector v{1.0};
  chain.on_matvec_result({}, v.span());
  chain.on_power_computed({}, 0, 2, v.span());
  EXPECT_EQ(h, 5.0);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_FALSE(chain.abort_requested());
}

TEST(ArnoldiHook, DefaultImplementationsAreNoOps) {
  class Minimal final : public krylov::ArnoldiHook {
  } hook;
  double h = 3.0;
  hook.on_solve_begin(0);
  hook.on_iteration_begin({});
  hook.on_projection_coefficient({}, 0, 1, h);
  hook.on_subdiagonal({}, h);
  la::Vector v{2.0};
  hook.on_matvec_result({}, v.span());
  hook.on_power_computed({}, 1, 4, v.span());
  EXPECT_EQ(h, 3.0);
  EXPECT_EQ(v[0], 2.0);
  EXPECT_FALSE(hook.abort_requested());
}
