#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "gen/circuit.hpp"
#include "gen/poisson.hpp"
#include "krylov/ft_gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"

namespace krylov = sdcgmres::krylov;
namespace sdc = sdcgmres::sdc;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

double explicit_residual(const sdcgmres::sparse::CsrMatrix& A,
                         const la::Vector& b, const la::Vector& x) {
  la::Vector r(A.rows());
  A.spmv(x, r);
  la::waxpby(1.0, b, -1.0, r, r);
  return la::nrm2(r);
}

krylov::FtGmresOptions paper_options() {
  krylov::FtGmresOptions opts;
  opts.inner.max_iters = 25;
  opts.inner.tol = 0.0;
  opts.outer.tol = 1e-8;
  opts.outer.max_outer = 150;
  return opts;
}

} // namespace

/// End-to-end reproduction of the paper's headline claim: FT-GMRES "runs
/// through" a single SDC of almost any magnitude in the orthogonalization
/// phase and still returns the right answer, without rollback.
TEST(Integration, RunsThroughAllThreeFaultClassesOnPoisson) {
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  const auto opts = paper_options();
  const auto baseline = krylov::ft_gmres(A, b, opts);
  ASSERT_EQ(baseline.status, krylov::SolveStatus::Converged);

  for (const auto model : {sdc::fault_classes::very_large(),
                           sdc::fault_classes::slightly_smaller(),
                           sdc::fault_classes::nearly_zero()}) {
    for (const auto position :
         {sdc::MgsPosition::First, sdc::MgsPosition::Last}) {
      sdc::FaultCampaign campaign(
          sdc::InjectionPlan::hessenberg(10, position, model));
      const auto res = krylov::ft_gmres(A, b, opts, &campaign);
      EXPECT_EQ(res.status, krylov::SolveStatus::Converged)
          << sdc::to_string(model);
      EXPECT_TRUE(campaign.fired());
      EXPECT_LE(explicit_residual(A, b, res.x), 1e-8 * la::nrm2(b) * 1.1)
          << sdc::to_string(model);
    }
  }
}

TEST(Integration, FaultyRunStillProducesCorrectSolution) {
  // Compare the faulty-run solution against the failure-free solution:
  // both must solve A x = b to tolerance (the answers may differ slightly
  // but both are *correct* in the residual sense).
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  const auto opts = paper_options();
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      3, sdc::MgsPosition::First, sdc::fault_classes::very_large()));
  const auto faulty = krylov::ft_gmres(A, b, opts, &campaign);
  ASSERT_TRUE(campaign.fired());
  ASSERT_EQ(faulty.status, krylov::SolveStatus::Converged);
  EXPECT_LE(explicit_residual(A, b, faulty.x), 1e-7);
}

TEST(Integration, DetectorAbortNeverHurtsConvergence) {
  // With the detector aborting tainted inner solves, large faults cost at
  // most a couple of extra outer iterations.
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  const auto opts = paper_options();
  const auto baseline = krylov::ft_gmres(A, b, opts);
  // Pick a site that is guaranteed to be reached (the middle of the run).
  const std::size_t site = baseline.total_inner_iterations / 2;

  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      site, sdc::MgsPosition::Last, sdc::fault_classes::very_large()));
  sdc::HessenbergBoundDetector detector(A.frobenius_norm(),
                                        sdc::DetectorResponse::AbortSolve);
  krylov::HookChain chain({&campaign, &detector});
  const auto res = krylov::ft_gmres(A, b, opts, &chain);
  ASSERT_EQ(res.status, krylov::SolveStatus::Converged);
  ASSERT_TRUE(campaign.fired());
  EXPECT_TRUE(detector.triggered());
  EXPECT_LE(res.outer_iterations, baseline.outer_iterations + 2);
}

TEST(Integration, NonsymmetricIllConditionedProblemConverges) {
  gen::CircuitOptions copts;
  copts.nodes = 400;
  const auto A = gen::circuit_like(copts);
  // b = A * ones: with kappa ~ 1e13 an arbitrary right-hand side would
  // demand solution components of size ~1e13, beyond what double-precision
  // residuals can certify to 1e-8; a consistent rhs with moderate solution
  // keeps the experiment in the regime the paper ran in.
  const la::Vector b = A.apply(la::ones(A.rows()));
  auto opts = paper_options();
  opts.outer.max_outer = 400;
  const auto baseline = krylov::ft_gmres(A, b, opts);
  ASSERT_EQ(baseline.status, krylov::SolveStatus::Converged)
      << "residual " << baseline.residual_norm;

  // One fault in the middle of the run; the solver must still converge.
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      baseline.total_inner_iterations / 2, sdc::MgsPosition::First,
      sdc::fault_classes::slightly_smaller()));
  const auto faulty = krylov::ft_gmres(A, b, opts, &campaign);
  EXPECT_TRUE(campaign.fired());
  EXPECT_EQ(faulty.status, krylov::SolveStatus::Converged);
}

TEST(Integration, NaNInjectionIsSurvivedViaSanitization) {
  // Worst-case SDC: the coefficient becomes NaN, the inner solution is
  // poisoned, and the reliable outer phase must filter it and recover.
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  const auto opts = paper_options();
  sdc::InjectionPlan plan;
  plan.aggregate_iteration = 5;
  plan.model =
      sdc::FaultModel::set_value(std::numeric_limits<double>::quiet_NaN());
  sdc::FaultCampaign campaign(plan);
  const auto res = krylov::ft_gmres(A, b, opts, &campaign);
  ASSERT_TRUE(campaign.fired());
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_GE(res.sanitized_outputs, 1u);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-7);
}

TEST(Integration, EveryInjectionSiteOnTinyProblemConverges) {
  // Exhaustive miniature version of the paper's Fig. 3 protocol.
  const auto A = gen::poisson2d(5);
  const la::Vector b = la::ones(25);
  krylov::FtGmresOptions opts;
  opts.inner.max_iters = 5;
  opts.outer.tol = 1e-8;
  opts.outer.max_outer = 200;
  const auto baseline = krylov::ft_gmres(A, b, opts);
  ASSERT_EQ(baseline.status, krylov::SolveStatus::Converged);

  std::size_t worst_increase = 0;
  for (std::size_t site = 0; site < baseline.total_inner_iterations; ++site) {
    sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
        site, sdc::MgsPosition::First, sdc::fault_classes::very_large()));
    const auto res = krylov::ft_gmres(A, b, opts, &campaign);
    ASSERT_EQ(res.status, krylov::SolveStatus::Converged)
        << "site " << site;
    if (res.outer_iterations > baseline.outer_iterations) {
      worst_increase = std::max(
          worst_increase, res.outer_iterations - baseline.outer_iterations);
    }
  }
  // "Run through": bounded damage everywhere, no failures.
  EXPECT_LE(worst_increase, baseline.outer_iterations * 3);
}
