#include <gtest/gtest.h>

#include <stdexcept>

#include "la/blas1.hpp"
#include "la/krylov_basis.hpp"

namespace la = sdcgmres::la;

TEST(KrylovBasis, StartsEmptyWithRequestedGeometry) {
  la::KrylovBasis b(8, 3);
  EXPECT_EQ(b.rows(), 8u);
  EXPECT_EQ(b.cols(), 0u);
  EXPECT_EQ(b.capacity(), 3u);
  EXPECT_TRUE(b.empty());
}

TEST(KrylovBasis, AppendedColumnsAreContiguousColumnMajor) {
  la::KrylovBasis b(3, 2);
  b.append(la::Vector{1.0, 2.0, 3.0});
  b.append(la::Vector{4.0, 5.0, 6.0});
  ASSERT_EQ(b.cols(), 2u);
  // Column-major with leading dimension == rows: col 1 starts at data+3.
  const double* d = b.data();
  EXPECT_EQ(d[0], 1.0);
  EXPECT_EQ(d[2], 3.0);
  EXPECT_EQ(d[3], 4.0);
  EXPECT_EQ(d[5], 6.0);
  EXPECT_EQ(b.col(1).data(), b.col(0).data() + 3);
}

TEST(KrylovBasis, AppendReturnsWritableZeroColumn) {
  la::KrylovBasis b(4, 1);
  std::span<double> c = b.append();
  for (const double v : c) EXPECT_EQ(v, 0.0);
  c[2] = 7.0;
  EXPECT_EQ(b.col(0)[2], 7.0);
}

TEST(KrylovBasis, AppendPastCapacityThrows) {
  la::KrylovBasis b(2, 1);
  b.append(la::Vector{1.0, 1.0});
  EXPECT_THROW(b.append(), std::length_error);
}

TEST(KrylovBasis, AppendLengthMismatchThrows) {
  la::KrylovBasis b(2, 1);
  EXPECT_THROW(b.append(la::Vector{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(KrylovBasis, PopBackRezeroesStorage) {
  la::KrylovBasis b(2, 1);
  b.append(la::Vector{9.0, 9.0});
  b.pop_back();
  EXPECT_EQ(b.cols(), 0u);
  std::span<double> c = b.append();
  EXPECT_EQ(c[0], 0.0);
  EXPECT_EQ(c[1], 0.0);
}

TEST(KrylovBasis, PopBackOnEmptyThrows) {
  la::KrylovBasis b(2, 1);
  EXPECT_THROW(b.pop_back(), std::out_of_range);
}

TEST(KrylovBasis, ClearKeepsArenaAndRezeroes) {
  la::KrylovBasis b(2, 2);
  b.append(la::Vector{1.0, 2.0});
  b.append(la::Vector{3.0, 4.0});
  b.clear();
  EXPECT_EQ(b.cols(), 0u);
  EXPECT_EQ(b.capacity(), 2u);
  EXPECT_EQ(b.data()[0], 0.0);
  EXPECT_EQ(b.data()[3], 0.0);
}

TEST(KrylovBasis, ColCopyMatchesColumnView) {
  la::KrylovBasis b(3, 1);
  b.append(la::Vector{1.5, -2.5, 3.5});
  const la::Vector v = b.col_copy(0);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], -2.5);
  EXPECT_THROW((void)b.col_copy(1), std::out_of_range);
}

TEST(KrylovBasis, ViewExposesLeadingColumns) {
  la::KrylovBasis b(2, 3);
  b.append(la::Vector{1.0, 0.0});
  b.append(la::Vector{0.0, 1.0});
  const la::BasisView v = b.view(1);
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_EQ(v.cols(), 1u);
  EXPECT_EQ(v.col(0)[0], 1.0);
  EXPECT_THROW((void)b.view(3), std::out_of_range);
}

TEST(KrylovBasis, ToDenseRoundTrip) {
  la::KrylovBasis b(2, 2);
  b.append(la::Vector{1.0, 2.0});
  b.append(la::Vector{3.0, 4.0});
  const la::DenseMatrix m = b.to_dense();
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(KrylovBasis, ColumnsWorkWithBlas1Kernels) {
  la::KrylovBasis b(4, 2);
  b.append(la::Vector{1.0, 0.0, 0.0, 0.0});
  b.append(la::Vector{0.0, 1.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(la::dot(b.col(0), b.col(1)), 0.0);
  EXPECT_DOUBLE_EQ(la::nrm2(b.col(0)), 1.0);
}
