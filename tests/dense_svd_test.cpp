#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

#include "dense/svd.hpp"
#include "la/blas2.hpp"

namespace dense = sdcgmres::dense;
namespace la = sdcgmres::la;

namespace {

la::DenseMatrix random_matrix(std::size_t m, std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  la::DenseMatrix A(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < m; ++i) A(i, j) = dist(rng);
  }
  return A;
}

/// ||A - U S V^T||_F.
double reconstruction_error(const la::DenseMatrix& A,
                            const dense::SvdResult& svd) {
  double err = 0.0;
  for (std::size_t j = 0; j < A.cols(); ++j) {
    for (std::size_t i = 0; i < A.rows(); ++i) {
      double sum = 0.0;
      for (std::size_t k = 0; k < A.cols(); ++k) {
        sum += svd.u(i, k) * svd.sigma[k] * svd.v(j, k);
      }
      err += (A(i, j) - sum) * (A(i, j) - sum);
    }
  }
  return std::sqrt(err);
}

} // namespace

TEST(JacobiSvd, DiagonalMatrix) {
  la::DenseMatrix A(3, 3);
  A(0, 0) = 1.0;
  A(1, 1) = 5.0;
  A(2, 2) = 3.0;
  const auto svd = dense::jacobi_svd(A);
  EXPECT_TRUE(svd.converged);
  EXPECT_NEAR(svd.sigma[0], 5.0, 1e-12);
  EXPECT_NEAR(svd.sigma[1], 3.0, 1e-12);
  EXPECT_NEAR(svd.sigma[2], 1.0, 1e-12);
}

TEST(JacobiSvd, SingularValuesSortedDescending) {
  const auto A = random_matrix(8, 5, 7);
  const auto svd = dense::jacobi_svd(A);
  for (std::size_t j = 1; j < 5; ++j) {
    EXPECT_GE(svd.sigma[j - 1], svd.sigma[j]);
  }
}

TEST(JacobiSvd, ReconstructsMatrix) {
  const auto A = random_matrix(6, 6, 11);
  const auto svd = dense::jacobi_svd(A);
  EXPECT_LT(reconstruction_error(A, svd), 1e-11);
}

TEST(JacobiSvd, TallMatrixReconstruction) {
  const auto A = random_matrix(12, 4, 13);
  const auto svd = dense::jacobi_svd(A);
  EXPECT_LT(reconstruction_error(A, svd), 1e-11);
}

TEST(JacobiSvd, UHasOrthonormalColumns) {
  const auto A = random_matrix(9, 4, 17);
  const auto svd = dense::jacobi_svd(A);
  EXPECT_LT(la::orthonormality_defect(svd.u), 1e-12);
}

TEST(JacobiSvd, VIsOrthogonal) {
  const auto A = random_matrix(7, 7, 19);
  const auto svd = dense::jacobi_svd(A);
  EXPECT_LT(la::orthonormality_defect(svd.v), 1e-12);
}

TEST(JacobiSvd, WideMatrixThrows) {
  la::DenseMatrix A(2, 3);
  EXPECT_THROW((void)dense::jacobi_svd(A), std::invalid_argument);
}

TEST(JacobiSvd, RankDeficientMatrixHasZeroSigma) {
  la::DenseMatrix A(3, 2);
  // Second column = 2 * first column.
  A(0, 0) = 1.0; A(1, 0) = 1.0; A(2, 0) = 1.0;
  A(0, 1) = 2.0; A(1, 1) = 2.0; A(2, 1) = 2.0;
  const auto svd = dense::jacobi_svd(A);
  EXPECT_NEAR(svd.sigma[1], 0.0, 1e-12);
  EXPECT_GT(svd.sigma[0], 1.0);
}

TEST(JacobiSvd, RelativeAccuracyForTinySingularValues) {
  // One-sided Jacobi computes small singular values to high relative
  // accuracy -- the property the truncation policy depends on.
  // (1e-150 squares to 1e-300, still a normal double; smaller values would
  // underflow in the column-norm accumulation.)
  la::DenseMatrix A(2, 2);
  A(0, 0) = 1.0;
  A(1, 1) = 1e-150;
  const auto svd = dense::jacobi_svd(A);
  EXPECT_NEAR(svd.sigma[1] / 1e-150, 1.0, 1e-10);
}

TEST(SvdLeastSquares, ExactSolveForWellConditionedSystem) {
  la::DenseMatrix A(2, 2);
  A(0, 0) = 2.0; A(0, 1) = 1.0;
  A(1, 0) = 1.0; A(1, 1) = 3.0;
  // b = A * [1; 2]
  const la::Vector b{4.0, 7.0};
  const la::Vector y = dense::svd_least_squares(A, b);
  EXPECT_NEAR(y[0], 1.0, 1e-12);
  EXPECT_NEAR(y[1], 2.0, 1e-12);
}

TEST(SvdLeastSquares, MinimumNormSolutionForSingularSystem) {
  // A = [1 1; 1 1] (rank 1), b = [2; 2].  Solutions: y1 + y2 = 2; the
  // minimum-norm solution is [1; 1].
  la::DenseMatrix A(2, 2);
  A(0, 0) = 1.0; A(0, 1) = 1.0;
  A(1, 0) = 1.0; A(1, 1) = 1.0;
  std::size_t rank = 0;
  const la::Vector y =
      dense::svd_least_squares(A, la::Vector{2.0, 2.0}, 1e-12, &rank);
  EXPECT_EQ(rank, 1u);
  EXPECT_NEAR(y[0], 1.0, 1e-12);
  EXPECT_NEAR(y[1], 1.0, 1e-12);
}

TEST(SvdLeastSquares, TruncationBoundsCoefficients) {
  // Nearly singular system: without truncation the coefficients blow up to
  // ~1/eps; with a relative cutoff of 1e-8 they stay bounded by
  // sigma_max/sigma_kept.
  la::DenseMatrix A(2, 2);
  A(0, 0) = 1.0;
  A(1, 1) = 1e-14;
  const la::Vector b{1.0, 1.0};
  std::size_t rank = 0;
  const la::Vector y = dense::svd_least_squares(A, b, 1e-8, &rank);
  EXPECT_EQ(rank, 1u);
  EXPECT_LT(std::abs(y[1]), 1e-6);

  const la::Vector y_full = dense::svd_least_squares(A, b, 0.0, &rank);
  EXPECT_EQ(rank, 2u);
  EXPECT_GT(std::abs(y_full[1]), 1e13);
}

TEST(SvdLeastSquares, RhsSizeMismatchThrows) {
  la::DenseMatrix A(3, 2);
  EXPECT_THROW((void)dense::svd_least_squares(A, la::Vector(2)),
               std::invalid_argument);
}

TEST(SvdLeastSquares, OverdeterminedResidualIsOrthogonalToRange) {
  const auto A = random_matrix(6, 3, 23);
  const la::Vector b{1.0, -1.0, 2.0, 0.5, -0.25, 3.0};
  const la::Vector y = dense::svd_least_squares(A, b);
  // r = b - A y must satisfy A^T r = 0.
  la::Vector r = b;
  la::gemv(-1.0, A, y, 1.0, r);
  la::Vector atr(3);
  la::gemv_t(1.0, A, r, 0.0, atr);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(atr[i], 0.0, 1e-12);
  }
}
