#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sdc/fault_model.hpp"

namespace sdc = sdcgmres::sdc;

TEST(FaultModel, ScaleMultiplies) {
  const auto f = sdc::FaultModel::scale(10.0);
  EXPECT_DOUBLE_EQ(f.apply(2.5), 25.0);
  EXPECT_DOUBLE_EQ(f.apply(-1.0), -10.0);
}

TEST(FaultModel, ScaleOfZeroStaysZero) {
  // A multiplicative fault on an exactly zero coefficient has no effect --
  // relevant for the tridiagonal "should be zero" entries of SPD problems.
  const auto f = sdc::FaultModel::scale(1e150);
  EXPECT_EQ(f.apply(0.0), 0.0);
}

TEST(FaultModel, SetValueReplaces) {
  const auto f = sdc::FaultModel::set_value(-7.0);
  EXPECT_EQ(f.apply(123.0), -7.0);
}

TEST(FaultModel, SetValueCanInjectNaN) {
  const auto f =
      sdc::FaultModel::set_value(std::numeric_limits<double>::quiet_NaN());
  EXPECT_TRUE(std::isnan(f.apply(1.0)));
}

TEST(FaultModel, AddValueOffsets) {
  const auto f = sdc::FaultModel::add_value(0.5);
  EXPECT_DOUBLE_EQ(f.apply(1.0), 1.5);
}

TEST(FaultModel, BitFlipDelegatesToBits) {
  const auto f = sdc::FaultModel::bit_flip(63);
  EXPECT_EQ(f.apply(4.0), -4.0);
}

TEST(FaultModel, ScaleOverflowProducesInf) {
  const auto f = sdc::FaultModel::scale(1e308);
  EXPECT_TRUE(std::isinf(f.apply(1e10)));
}

TEST(FaultModel, ScaleUnderflowFlushesTowardZero) {
  const auto f = sdc::FaultModel::scale(1e-300);
  const double y = f.apply(1e-100);
  EXPECT_EQ(y, 0.0); // 1e-400 is below the subnormal range
}

TEST(FaultClasses, MatchPaperDefinitions) {
  EXPECT_DOUBLE_EQ(sdc::fault_classes::very_large().payload, 1e150);
  EXPECT_DOUBLE_EQ(sdc::fault_classes::slightly_smaller().payload,
                   std::pow(10.0, -0.5));
  EXPECT_DOUBLE_EQ(sdc::fault_classes::nearly_zero().payload, 1e-300);
}

TEST(FaultClasses, Class1ViolatesAnyReasonableBoundClass23DoNot) {
  // For a coefficient of typical magnitude ~1 and a bound ~40-450 (the
  // paper's matrices), class 1 is detectable, classes 2 and 3 are not.
  const double h = 1.7;
  const double bound = 42.4;
  EXPECT_GT(std::abs(sdc::fault_classes::very_large().apply(h)), bound);
  EXPECT_LE(std::abs(sdc::fault_classes::slightly_smaller().apply(h)), bound);
  EXPECT_LE(std::abs(sdc::fault_classes::nearly_zero().apply(h)), bound);
}

TEST(FaultModel, ToStringDescribesModel) {
  EXPECT_EQ(sdc::to_string(sdc::FaultModel::scale(2.0)), "scale(2)");
  EXPECT_EQ(sdc::to_string(sdc::FaultModel::bit_flip(5)), "bitflip(5)");
  EXPECT_EQ(sdc::to_string(sdc::FaultModel::set_value(3.0)), "set(3)");
  EXPECT_EQ(sdc::to_string(sdc::FaultModel::add_value(1.0)), "add(1)");
}
