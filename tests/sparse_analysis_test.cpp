#include <gtest/gtest.h>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "sparse/analysis.hpp"

namespace sparse = sdcgmres::sparse;
namespace gen = sdcgmres::gen;

namespace {

sparse::CsrMatrix nonsymmetric_pattern() {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 2.0); // no (1, 0) entry
  coo.add(1, 1, 1.0);
  return sparse::CsrMatrix(std::move(coo));
}

} // namespace

TEST(Analysis, PoissonPatternIsSymmetric) {
  const auto A = gen::poisson2d(5);
  EXPECT_TRUE(sparse::is_pattern_symmetric(A));
  EXPECT_TRUE(sparse::is_numerically_symmetric(A));
}

TEST(Analysis, ConvectionDiffusionIsNonsymmetricButPatternSymmetric) {
  const auto A = gen::convection_diffusion2d(5, 20.0, 0.0);
  EXPECT_TRUE(sparse::is_pattern_symmetric(A));
  EXPECT_FALSE(sparse::is_numerically_symmetric(A));
}

TEST(Analysis, DetectsNonsymmetricPattern) {
  const auto A = nonsymmetric_pattern();
  EXPECT_FALSE(sparse::is_pattern_symmetric(A));
  EXPECT_FALSE(sparse::is_numerically_symmetric(A));
}

TEST(Analysis, NumericalSymmetryHonorsTolerance) {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0 + 1e-12);
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_FALSE(sparse::is_numerically_symmetric(A, 0.0));
  EXPECT_TRUE(sparse::is_numerically_symmetric(A, 1e-10));
}

TEST(Analysis, RectangularMatrixIsNotSymmetric) {
  sparse::CooMatrix coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(0, 2, 1.0);
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_FALSE(sparse::is_pattern_symmetric(A));
}

TEST(Analysis, FullStructuralRankNeedsNonemptyRowsAndCols) {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0); // row 1 and column 1 empty
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_FALSE(sparse::has_nonempty_rows_and_cols(A));
  EXPECT_TRUE(sparse::has_nonempty_rows_and_cols(gen::poisson2d(4)));
}

TEST(Analysis, PoissonIsDiagonallyDominant) {
  EXPECT_TRUE(sparse::is_diagonally_dominant(gen::poisson2d(6)));
}

TEST(Analysis, NonDominantMatrixDetected) {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 5.0);
  coo.add(1, 1, 1.0);
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_FALSE(sparse::is_diagonally_dominant(A));
}

TEST(Analysis, BandwidthOfPoisson1d) {
  EXPECT_EQ(sparse::bandwidth(gen::poisson1d(10)), 1u);
}

TEST(Analysis, BandwidthOfPoisson2dEqualsGridWidth) {
  EXPECT_EQ(sparse::bandwidth(gen::poisson2d(7)), 7u);
}

TEST(Analysis, PositiveDefiniteProbeAcceptsPoisson) {
  EXPECT_TRUE(sparse::probe_positive_definite(gen::poisson2d(6)));
}

TEST(Analysis, PositiveDefiniteProbeRejectsNegativeDefinite) {
  const auto A = gen::poisson2d(6).scaled(-1.0);
  EXPECT_FALSE(sparse::probe_positive_definite(A));
}

TEST(Analysis, AnalyzeAggregatesFields) {
  const auto A = gen::poisson2d(10);
  const auto p = sparse::analyze(A);
  EXPECT_EQ(p.rows, 100u);
  EXPECT_EQ(p.cols, 100u);
  EXPECT_EQ(p.nnz, 5u * 100u - 4u * 10u);
  EXPECT_TRUE(p.pattern_symmetric);
  EXPECT_TRUE(p.numerically_symmetric);
  EXPECT_TRUE(p.has_full_structural_rank);
  EXPECT_TRUE(p.diagonally_dominant);
  EXPECT_EQ(p.bandwidth, 10u);
}
