#include <gtest/gtest.h>

#include <cmath>

#include "gen/poisson.hpp"
#include "krylov/arnoldi.hpp"
#include "krylov/gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/injection.hpp"

namespace sdc = sdcgmres::sdc;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

TEST(Injection, FiresExactlyOnceAtTargetIteration) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      3, sdc::MgsPosition::First, sdc::FaultModel::scale(2.0)));
  (void)krylov::arnoldi(op, la::ones(36), 8, krylov::Orthogonalization::MGS,
                        &campaign);
  EXPECT_TRUE(campaign.fired());
  ASSERT_EQ(campaign.log().size(), 1u);
  const auto& e = campaign.log().events()[0];
  EXPECT_EQ(e.kind, sdc::EventKind::Injection);
  EXPECT_EQ(e.iteration, 3u);
  EXPECT_EQ(e.coefficient, 0u); // first MGS step
  EXPECT_DOUBLE_EQ(e.value_after, 2.0 * e.value_before);
}

TEST(Injection, LastPositionTargetsDiagonalCoefficient) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      4, sdc::MgsPosition::Last, sdc::FaultModel::scale(3.0)));
  (void)krylov::arnoldi(op, la::ones(36), 8, krylov::Orthogonalization::MGS,
                        &campaign);
  ASSERT_TRUE(campaign.fired());
  const auto& e = campaign.log().events()[0];
  EXPECT_EQ(e.iteration, 4u);
  EXPECT_EQ(e.coefficient, 4u); // i = j on the targeted column
}

TEST(Injection, ExplicitIndexPosition) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::InjectionPlan plan;
  plan.position = sdc::MgsPosition::Index;
  plan.coefficient_index = 2;
  plan.aggregate_iteration = 5;
  plan.model = sdc::FaultModel::scale(7.0);
  sdc::FaultCampaign campaign(plan);
  (void)krylov::arnoldi(op, la::ones(36), 8, krylov::Orthogonalization::MGS,
                        &campaign);
  ASSERT_TRUE(campaign.fired());
  EXPECT_EQ(campaign.log().events()[0].coefficient, 2u);
}

TEST(Injection, IndexBeyondColumnLengthNeverFires) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::InjectionPlan plan;
  plan.position = sdc::MgsPosition::Index;
  plan.coefficient_index = 10; // column 2 has only 3 coefficients
  plan.aggregate_iteration = 2;
  sdc::FaultCampaign campaign(plan);
  (void)krylov::arnoldi(op, la::ones(36), 8, krylov::Orthogonalization::MGS,
                        &campaign);
  EXPECT_FALSE(campaign.fired());
}

TEST(Injection, SubdiagonalTarget) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::InjectionPlan plan;
  plan.target = sdc::InjectionTarget::SubdiagonalNorm;
  plan.aggregate_iteration = 2;
  plan.model = sdc::FaultModel::scale(0.5);
  sdc::FaultCampaign campaign(plan);
  const auto res = krylov::arnoldi(op, la::ones(36), 6,
                                   krylov::Orthogonalization::MGS, &campaign);
  ASSERT_TRUE(campaign.fired());
  const auto& e = campaign.log().events()[0];
  EXPECT_EQ(e.iteration, 2u);
  EXPECT_EQ(e.coefficient, 3u); // h(j+1, j) with j = 2
  EXPECT_DOUBLE_EQ(res.h(3, 2), e.value_after);
}

TEST(Injection, MatvecElementTarget) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::InjectionPlan plan;
  plan.target = sdc::InjectionTarget::MatvecElement;
  plan.aggregate_iteration = 1;
  plan.element_index = 7;
  plan.model = sdc::FaultModel::set_value(1e9);
  sdc::FaultCampaign campaign(plan);
  (void)krylov::arnoldi(op, la::ones(36), 6, krylov::Orthogonalization::MGS,
                        &campaign);
  ASSERT_TRUE(campaign.fired());
  EXPECT_DOUBLE_EQ(campaign.log().events()[0].value_after, 1e9);
}

TEST(Injection, AggregateCountingSpansMultipleSolves) {
  // Two solves of 5 iterations each: site 7 is iteration 2 of solve 1.
  const auto A = gen::poisson2d(6);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      7, sdc::MgsPosition::First, sdc::FaultModel::scale(2.0)));
  krylov::GmresOptions opts;
  opts.max_iters = 5;
  opts.tol = 0.0;
  const krylov::CsrOperator op(A);
  (void)krylov::gmres(op, la::ones(36), la::zeros(36), opts, &campaign, 0);
  EXPECT_FALSE(campaign.fired());
  EXPECT_EQ(campaign.aggregate_iterations(), 5u);
  (void)krylov::gmres(op, la::ones(36), la::zeros(36), opts, &campaign, 1);
  EXPECT_TRUE(campaign.fired());
  const auto& e = campaign.log().events()[0];
  EXPECT_EQ(e.solve_index, 1u);
  EXPECT_EQ(e.iteration, 2u);
}

TEST(Injection, NeverFiresWhenTargetBeyondRun) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      1000, sdc::MgsPosition::First, sdc::FaultModel::scale(2.0)));
  (void)krylov::arnoldi(op, la::ones(36), 8, krylov::Orthogonalization::MGS,
                        &campaign);
  EXPECT_FALSE(campaign.fired());
  EXPECT_TRUE(campaign.log().empty());
}

TEST(Injection, SingleEventOnly) {
  // Even though every subsequent iteration also has a "first" MGS step,
  // the transient fault must fire exactly once.
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      0, sdc::MgsPosition::First, sdc::FaultModel::scale(100.0)));
  (void)krylov::arnoldi(op, la::ones(36), 10, krylov::Orthogonalization::MGS,
                        &campaign);
  EXPECT_EQ(campaign.log().size(), 1u);
}

TEST(Injection, ResetReArms) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      0, sdc::MgsPosition::First, sdc::FaultModel::scale(2.0)));
  (void)krylov::arnoldi(op, la::ones(36), 3, krylov::Orthogonalization::MGS,
                        &campaign);
  ASSERT_TRUE(campaign.fired());
  campaign.reset();
  EXPECT_FALSE(campaign.fired());
  EXPECT_EQ(campaign.aggregate_iterations(), 0u);
  (void)krylov::arnoldi(op, la::ones(36), 3, krylov::Orthogonalization::MGS,
                        &campaign);
  EXPECT_TRUE(campaign.fired());
}

TEST(Injection, FirstCoefficientOfSpdColumnIsNearZeroBeforeFault) {
  // SPD tridiagonal structure: h(0, j) should be exactly 0 for j >= 2 in
  // exact arithmetic; in floating point it is ~machine-epsilon-sized.
  // Scaling that roundoff value by 1e150 makes it enormous and clearly
  // nonzero -- the mechanism behind the large Fig. 3a penalties.
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      5, sdc::MgsPosition::First, sdc::FaultModel::scale(1e150)));
  const auto res = krylov::arnoldi(op, la::ones(64), 8,
                                   krylov::Orthogonalization::MGS, &campaign);
  ASSERT_TRUE(campaign.fired());
  const auto& e = campaign.log().events()[0];
  EXPECT_LT(std::abs(e.value_before), 1e-10); // tridiagonal "zero"
  // The scaled roundoff dwarfs the theoretical bound: a detectable fault
  // that, undetected, visibly corrupts the basis.
  EXPECT_GT(std::abs(e.value_after), A.frobenius_norm());
  (void)res;
}
