#include <gtest/gtest.h>

#include <span>
#include <stdexcept>

#include "la/blas1.hpp"
#include "la/block.hpp"
#include "la/krylov_basis.hpp"

namespace la = sdcgmres::la;

TEST(BlockView, ColumnsFollowTheLeadingDimension) {
  double storage[3 * 5] = {};
  const la::BlockView v(storage, /*rows=*/3, /*cols=*/4, /*ld=*/5);
  EXPECT_EQ(v.rows(), 3u);
  EXPECT_EQ(v.cols(), 4u);
  EXPECT_EQ(v.ld(), 5u);
  EXPECT_FALSE(v.empty());
  for (std::size_t j = 0; j < v.cols(); ++j) {
    EXPECT_EQ(v.col(j).data(), storage + j * 5);
    EXPECT_EQ(v.col(j).size(), 3u);
  }
  v.col(2)[1] = 42.0;
  EXPECT_EQ(storage[2 * 5 + 1], 42.0);
}

TEST(BlockView, AsBasisViewSharesLayout) {
  double storage[4 * 2] = {1, 2, 3, 4, 5, 6, 7, 8};
  const la::BlockView v(storage, 4, 2, 4);
  const la::BasisView c = v.as_basis_view();
  EXPECT_EQ(c.rows(), v.rows());
  EXPECT_EQ(c.cols(), v.cols());
  EXPECT_EQ(c.ld(), v.ld());
  EXPECT_EQ(c.data(), v.data());
  EXPECT_EQ(c.col(1)[0], 5.0);
}

TEST(BlockWorkspace, PaddingMatchesKrylovBasis) {
  // The block arena and the basis arena must agree on the anti-aliasing
  // pad, so a block staged from basis columns has the same stride rules.
  for (const std::size_t rows : {7u, 512u, 1024u, 1000u}) {
    la::BlockWorkspace w(rows, 3);
    la::KrylovBasis basis(rows, 3);
    EXPECT_EQ(w.ld(), basis.ld()) << "rows = " << rows;
    EXPECT_EQ(w.ld(), la::padded_leading_dimension(rows));
  }
}

TEST(BlockWorkspace, ReserveIsMonotoneForFixedRows) {
  la::BlockWorkspace w;
  w.reserve(100, 4);
  la::BlockView v4 = w.view(4);
  v4.col(3)[99] = 7.0;
  double* const before = v4.data();
  w.reserve(100, 2); // smaller request: no reallocation, contents kept
  EXPECT_EQ(w.capacity(), 4u);
  EXPECT_EQ(w.view(4).data(), before);
  EXPECT_EQ(w.view(4).col(3)[99], 7.0);
  w.reserve(100, 8); // growth keeps the geometry
  EXPECT_EQ(w.capacity(), 8u);
  EXPECT_EQ(w.rows(), 100u);
}

TEST(BlockWorkspace, ViewPastCapacityThrows) {
  la::BlockWorkspace w(10, 2);
  EXPECT_THROW((void)w.view(3), std::out_of_range);
  EXPECT_EQ(w.view(0).cols(), 0u); // empty views are fine
}

TEST(BlockOfKrylovBasis, MutableViewOverPresentColumns) {
  la::KrylovBasis basis(6, 3);
  (void)basis.append();
  (void)basis.append();
  la::BlockView v = la::block(basis, 2);
  EXPECT_EQ(v.rows(), 6u);
  EXPECT_EQ(v.cols(), 2u);
  EXPECT_EQ(v.ld(), basis.ld());
  v.col(1)[4] = -3.5;
  EXPECT_EQ(basis.col(1)[4], -3.5);
  EXPECT_THROW((void)la::block(basis, 3), std::out_of_range);
}
