#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "dense/hessenberg_qr.hpp"
#include "dense/triangular.hpp"
#include "la/blas2.hpp"

namespace dense = sdcgmres::dense;
namespace la = sdcgmres::la;

TEST(HessenbergQr, InitialResidualIsBeta) {
  dense::HessenbergQr qr(5, 3.5);
  EXPECT_EQ(qr.size(), 0u);
  EXPECT_DOUBLE_EQ(qr.residual_estimate(), 3.5);
}

TEST(HessenbergQr, ZeroCapacityThrows) {
  EXPECT_THROW(dense::HessenbergQr(0, 1.0), std::invalid_argument);
}

TEST(HessenbergQr, WrongColumnSizeThrows) {
  dense::HessenbergQr qr(3, 1.0);
  const std::vector<double> too_short{1.0};
  EXPECT_THROW((void)qr.add_column(too_short), std::invalid_argument);
}

TEST(HessenbergQr, CapacityExhaustionThrows) {
  dense::HessenbergQr qr(1, 1.0);
  (void)qr.add_column(std::vector<double>{1.0, 0.5});
  EXPECT_THROW((void)qr.add_column(std::vector<double>{1.0, 0.5, 0.1}),
               std::length_error);
}

TEST(HessenbergQr, SingleColumnResidual) {
  // H = [2; 1], rhs = beta*e1 with beta = 1.  The least-squares residual is
  // beta * |h21| / hypot(h11, h21) = 1/sqrt(5).
  dense::HessenbergQr qr(2, 1.0);
  const double res = qr.add_column(std::vector<double>{2.0, 1.0});
  EXPECT_NEAR(res, 1.0 / std::sqrt(5.0), 1e-15);
  EXPECT_EQ(qr.size(), 1u);
}

TEST(HessenbergQr, ResidualMonotonicallyNonIncreasing) {
  dense::HessenbergQr qr(4, 2.0);
  double prev = qr.residual_estimate();
  const std::vector<std::vector<double>> cols = {
      {1.0, 0.8},
      {0.3, 1.2, 0.6},
      {-0.2, 0.1, 0.9, 0.4},
      {0.5, -0.3, 0.2, 1.1, 0.25},
  };
  for (const auto& c : cols) {
    const double res = qr.add_column(c);
    EXPECT_LE(res, prev * (1.0 + 1e-14));
    prev = res;
  }
}

TEST(HessenbergQr, SolvesProjectedSystemExactly) {
  // Build H (3x2 Hessenberg), reduce, solve R y = g, and verify that y
  // minimizes ||H y - beta e1||: for a consistent system the residual is
  // the reported estimate.
  dense::HessenbergQr qr(2, 1.0);
  (void)qr.add_column(std::vector<double>{2.0, 0.5});
  const double res = qr.add_column(std::vector<double>{1.0, 1.5, 0.75});

  const la::DenseMatrix R = qr.r_block();
  const la::Vector z = qr.rhs_block();
  const la::Vector y = dense::back_substitute(R, z);

  // Reconstruct H explicitly and compute ||H y - e1||.
  la::DenseMatrix H(3, 2);
  H(0, 0) = 2.0; H(1, 0) = 0.5;
  H(0, 1) = 1.0; H(1, 1) = 1.5; H(2, 1) = 0.75;
  la::Vector r{1.0, 0.0, 0.0};
  la::gemv(-1.0, H, y, 1.0, r);
  const double true_res = std::sqrt(r[0] * r[0] + r[1] * r[1] + r[2] * r[2]);
  EXPECT_NEAR(true_res, res, 1e-14);
}

TEST(HessenbergQr, RAccessorGuardsBounds) {
  dense::HessenbergQr qr(2, 1.0);
  (void)qr.add_column(std::vector<double>{1.0, 0.0});
  EXPECT_NO_THROW((void)qr.r(0, 0));
  EXPECT_THROW((void)qr.r(1, 0), std::out_of_range); // below diagonal
  EXPECT_THROW((void)qr.r(0, 1), std::out_of_range); // column not added
}

TEST(HessenbergQr, TriangularFactorIsUpperTriangular) {
  dense::HessenbergQr qr(3, 1.0);
  (void)qr.add_column(std::vector<double>{1.0, 0.7});
  (void)qr.add_column(std::vector<double>{0.2, 1.1, 0.4});
  (void)qr.add_column(std::vector<double>{0.3, -0.2, 0.9, 0.5});
  const la::DenseMatrix R = qr.r_block();
  for (std::size_t i = 1; i < 3; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(R(i, j), 0.0);
    }
  }
}

TEST(HessenbergQr, HappyBreakdownColumnGivesZeroResidualForConsistentSystem) {
  // With h21 = 0, the system H y = beta*e1 is square and consistent, so
  // the residual estimate collapses to ~0.
  dense::HessenbergQr qr(1, 2.0);
  const double res = qr.add_column(std::vector<double>{4.0, 0.0});
  EXPECT_NEAR(res, 0.0, 1e-15);
}

TEST(HessenbergQr, PopColumnRestoresResidualAndSize) {
  dense::HessenbergQr qr(3, 2.0);
  (void)qr.add_column(std::vector<double>{1.0, 0.7});
  const double res_before = qr.residual_estimate();
  const auto r_before = qr.r_block();
  (void)qr.add_column(std::vector<double>{0.2, 1.1, 0.4});
  qr.pop_column();
  EXPECT_EQ(qr.size(), 1u);
  EXPECT_NEAR(qr.residual_estimate(), res_before, 1e-15);
  EXPECT_EQ(qr.r_block()(0, 0), r_before(0, 0));
}

TEST(HessenbergQr, PopThenReAddMatchesDirectBuild) {
  // pop + re-add of a *different* column must give the same factorization
  // as building it directly.
  const std::vector<double> col0{1.0, 0.7};
  const std::vector<double> bad{1e-18, 1e-18, 1e-18};
  const std::vector<double> good{0.3, 0.9, 0.5};

  dense::HessenbergQr direct(2, 1.5);
  (void)direct.add_column(col0);
  const double expected = direct.add_column(good);

  dense::HessenbergQr popped(2, 1.5);
  (void)popped.add_column(col0);
  (void)popped.add_column(bad);
  popped.pop_column();
  const double actual = popped.add_column(good);

  EXPECT_NEAR(actual, expected, 1e-15);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = i; j < 2; ++j) {
      EXPECT_NEAR(popped.r(i, j), direct.r(i, j), 1e-15);
    }
  }
}

TEST(HessenbergQr, PopOnEmptyThrows) {
  dense::HessenbergQr qr(2, 1.0);
  EXPECT_THROW(qr.pop_column(), std::logic_error);
}

TEST(HessenbergQr, SurvivesHugeFaultyEntries) {
  // Class-1 faults scale an entry by 1e150; the QR update must stay finite.
  dense::HessenbergQr qr(2, 1.0);
  (void)qr.add_column(std::vector<double>{1e150, 0.5});
  const double res = qr.add_column(std::vector<double>{1.0, 1.0, 0.5});
  EXPECT_TRUE(std::isfinite(res));
  EXPECT_TRUE(std::isfinite(qr.r(0, 0)));
}
