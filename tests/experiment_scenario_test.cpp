/// \file experiment_scenario_test.cpp
/// \brief The spec parser and the config-driven scenario runner: parse /
/// round-trip / error behaviour, and equality of spec-driven runs with
/// their hand-assembled equivalents.

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "experiment/scenario.hpp"
#include "experiment/scenario_spec.hpp"
#include "experiment/sweep.hpp"
#include "gen/poisson.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/gmres.hpp"
#include "la/blas1.hpp"
#include "solver/solver.hpp"

namespace experiment = sdcgmres::experiment;
namespace solver = sdcgmres::solver;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace sdc = sdcgmres::sdc;
namespace la = sdcgmres::la;
using experiment::ScenarioSpec;

// ---------------------------------------------------------------------------
// ScenarioSpec parser
// ---------------------------------------------------------------------------

TEST(ScenarioSpec, ParsesAndRoundTrips) {
  const auto spec =
      ScenarioSpec::parse("  solver=ft_gmres  n=40\tfault=scale:1e150 ");
  EXPECT_EQ(spec.get("solver"), "ft_gmres");
  EXPECT_EQ(spec.get_size("n", 0), 40u);
  EXPECT_EQ(spec.get("fault"), "scale:1e150"); // ':' survives in values
  EXPECT_EQ(spec.to_string(), "solver=ft_gmres n=40 fault=scale:1e150");

  // Round-trip: parse(to_string(s)) == s.
  const auto again = ScenarioSpec::parse(spec.to_string());
  EXPECT_EQ(again.to_string(), spec.to_string());
}

TEST(ScenarioSpec, LaterAssignmentsOverride) {
  auto spec = ScenarioSpec::parse("n=10 n=20");
  EXPECT_EQ(spec.get_size("n", 0), 20u);
  spec.merge(ScenarioSpec::parse("n=30 tol=1e-6"));
  EXPECT_EQ(spec.get_size("n", 0), 30u);
  EXPECT_EQ(spec.get_double("tol", 0.0), 1e-6);
  // Order is preserved: n first (where it was first assigned).
  EXPECT_EQ(spec.keys().front(), "n");
}

TEST(ScenarioSpec, TypedAccessorsValidate) {
  const auto spec =
      ScenarioSpec::parse("n=ten tol=fast flag=maybe ok=7 neg=-5");
  EXPECT_EQ(spec.get_size("ok", 0), 7u);
  EXPECT_EQ(spec.get_size("absent", 3), 3u);
  EXPECT_THROW((void)spec.get_size("n", 0), std::invalid_argument);
  // std::stoull would silently wrap a negative value to ~1.8e19.
  EXPECT_THROW((void)spec.get_size("neg", 0), std::invalid_argument);
  EXPECT_EQ(spec.get_double("neg", 0.0), -5.0); // doubles may be negative
  EXPECT_THROW((void)spec.get_double("tol", 0.0), std::invalid_argument);
  EXPECT_THROW((void)spec.get_bool("flag", false), std::invalid_argument);
}

TEST(ScenarioSpec, MalformedTokensThrow) {
  EXPECT_THROW((void)ScenarioSpec::parse("novalue"), std::invalid_argument);
  EXPECT_THROW((void)ScenarioSpec::parse("=value"), std::invalid_argument);
  EXPECT_NO_THROW((void)ScenarioSpec::parse("empty="));
  EXPECT_NO_THROW((void)ScenarioSpec::parse(""));
}

TEST(ScenarioSpec, UnknownKeyValidationListsKnownKeys) {
  const auto spec = ScenarioSpec::parse("solver=gmres positon=first");
  try {
    experiment::validate_scenario_keys(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("positon"), std::string::npos);
    EXPECT_NE(what.find("position"), std::string::npos) << what;
    EXPECT_NE(what.find("matrix"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Scenario runner: single solves
// ---------------------------------------------------------------------------

TEST(Scenario, SingleSolveMatchesDirectCallBitwise) {
  const auto result = experiment::run_scenario(
      "solver=gmres matrix=poisson n=8 restart=20 max_iters=200");

  const auto A = gen::poisson2d(8);
  krylov::GmresOptions opts;
  opts.restart = 20;
  opts.max_iters = 200;
  const auto direct = krylov::gmres(A, la::ones(A.rows()), opts);

  EXPECT_EQ(result.report.status, direct.status);
  EXPECT_EQ(result.report.iterations, direct.iterations);
  EXPECT_EQ(result.report.residual_norm, direct.residual_norm);
  ASSERT_EQ(result.x.size(), direct.x.size());
  for (std::size_t i = 0; i < direct.x.size(); ++i) {
    EXPECT_EQ(result.x[i], direct.x[i]);
  }
}

TEST(Scenario, FaultAndDetectorWireUp) {
  // A class-1 fault at site 3 must fire and the bound detector must see
  // it (the detector is chained after the campaign).
  const auto result = experiment::run_scenario(
      "solver=ft_gmres matrix=poisson n=8 inner=6 fault=class1 site=3 "
      "position=first detector=bound response=record");
  EXPECT_TRUE(result.injected);
  EXPECT_TRUE(result.detected);
  EXPECT_TRUE(result.report.converged());
}

TEST(Scenario, HookOnHooklessSolverThrows) {
  EXPECT_THROW((void)experiment::run_scenario(
                   "solver=cg matrix=poisson n=6 fault=class1"),
               std::invalid_argument);
}

TEST(Scenario, UnknownNamesFailLoudly) {
  EXPECT_THROW((void)experiment::run_scenario("solver=bicgstab n=6"),
               std::invalid_argument);
  EXPECT_THROW((void)experiment::run_scenario("matrix=hilbert n=6"),
               std::invalid_argument);
  EXPECT_THROW((void)experiment::run_scenario("precond=ssor n=6"),
               std::invalid_argument);
  EXPECT_THROW((void)experiment::run_scenario("rhs=zeros n=6"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scenario runner: sweeps
// ---------------------------------------------------------------------------

TEST(Scenario, SweepFromSpecEqualsHandAssembledSweep) {
  const auto spec = ScenarioSpec::parse(
      "solver=ft_gmres matrix=poisson n=6 inner=5 max_iters=120 sweep=1 "
      "fault=class1 position=first stride=2");
  const auto from_spec = experiment::run_injection_sweep(spec);

  const auto A = gen::poisson2d(6);
  experiment::SweepConfig config;
  config.solver.inner.max_iters = 5;
  config.solver.outer.max_outer = 120;
  config.position = sdc::MgsPosition::First;
  config.model = sdc::fault_classes::very_large();
  config.stride = 2;
  const auto direct =
      experiment::run_injection_sweep(A, la::ones(A.rows()), config);

  EXPECT_EQ(from_spec.baseline_outer, direct.baseline_outer);
  EXPECT_EQ(from_spec.baseline_total_inner, direct.baseline_total_inner);
  EXPECT_EQ(from_spec.points, direct.points);
}

TEST(Scenario, RunScenarioSweepModeReturnsSweep) {
  const auto result = experiment::run_scenario(
      "matrix=poisson n=6 inner=5 sweep=1 fault=class1 site_limit=5");
  EXPECT_TRUE(result.is_sweep);
  EXPECT_EQ(result.sweep.points.size(), 5u);
  EXPECT_GT(result.sweep.baseline_total_inner, 5u);
}

TEST(Scenario, SweepSpecValidation) {
  // Sweeps are the nested solver's protocol.
  EXPECT_THROW((void)experiment::run_injection_sweep(ScenarioSpec::parse(
                   "solver=gmres matrix=poisson n=6 sweep=1")),
               std::invalid_argument);
  // A sweep without a fault is meaningless.
  EXPECT_THROW((void)experiment::run_injection_sweep(ScenarioSpec::parse(
                   "matrix=poisson n=6 sweep=1 fault=none")),
               std::invalid_argument);
  // Detector bound must be positive.
  EXPECT_THROW((void)experiment::run_injection_sweep(ScenarioSpec::parse(
                   "matrix=poisson n=6 sweep=1 detector=bound bound=-2")),
               std::invalid_argument);
  // stride=0 is rejected before any solve runs.
  EXPECT_THROW((void)experiment::run_injection_sweep(ScenarioSpec::parse(
                   "matrix=poisson n=6 sweep=1 stride=0")),
               std::invalid_argument);
}

TEST(Scenario, ThreadedSweepFromSpecIdenticalToSerial) {
  const char* base =
      "matrix=poisson n=6 inner=5 sweep=1 fault=class1 position=last";
  auto serial = ScenarioSpec::parse(base);
  serial.set("threads", "1");
  auto threaded = ScenarioSpec::parse(base);
  threaded.set("threads", "2");
  const auto a = experiment::run_injection_sweep(serial);
  const auto b = experiment::run_injection_sweep(threaded);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.baseline_outer, b.baseline_outer);
}

TEST(Scenario, BatchKeyDrivesLockstepSweepIdenticalToSolo) {
  const char* base =
      "matrix=poisson n=6 inner=5 sweep=1 fault=class1 position=first";
  auto solo = ScenarioSpec::parse(base);
  solo.set("batch", "1");
  auto batched = ScenarioSpec::parse(base);
  batched.set("batch", "4");
  batched.set("threads", "2");
  const auto a = experiment::run_injection_sweep(solo);
  const auto b = experiment::run_injection_sweep(batched);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.baseline_outer, b.baseline_outer);
  // batch=0 is rejected before any solve runs.
  auto zero = ScenarioSpec::parse(base);
  zero.set("batch", "0");
  EXPECT_THROW((void)experiment::run_injection_sweep(zero),
               std::invalid_argument);
  // solver=ft_gmres_batch promises batching: a sweep without an explicit
  // batch=B is rejected instead of silently running solo solves.
  auto named = ScenarioSpec::parse(base);
  named.set("solver", "ft_gmres_batch");
  EXPECT_THROW((void)experiment::run_injection_sweep(named),
               std::invalid_argument);
  named.set("batch", "3");
  const auto c = experiment::run_injection_sweep(named);
  EXPECT_EQ(c.points, a.points);
}

TEST(Scenario, BatchedSolverRunsSingleSolveMode) {
  // ft_gmres_batch is a full registry citizen: single-solve scenarios run
  // it as a batch of one, matching ft_gmres exactly.
  const auto batched = experiment::run_scenario(
      "solver=ft_gmres_batch matrix=poisson n=6 inner=5");
  const auto solo =
      experiment::run_scenario("solver=ft_gmres matrix=poisson n=6 inner=5");
  EXPECT_TRUE(batched.report.converged());
  EXPECT_EQ(batched.report.iterations, solo.report.iterations);
  EXPECT_EQ(batched.report.residual_norm, solo.report.residual_norm);
  ASSERT_EQ(batched.x.size(), solo.x.size());
  for (std::size_t i = 0; i < solo.x.size(); ++i) {
    ASSERT_EQ(batched.x[i], solo.x[i]) << "x[" << i << "]";
  }
}

TEST(Scenario, SweepRangeValidationIsUpFrontAndListsRanges) {
  // batch=0 / inner=0 and negative values fail inside
  // sweep_config_from_spec itself -- before any matrix is built or solve
  // runs -- with messages naming the offending key and the valid range.
  const auto expect_range_throw = [](const char* spec_text, const char* key) {
    const auto spec = ScenarioSpec::parse(spec_text);
    try {
      (void)experiment::sweep_config_from_spec(spec, /*frobenius_norm=*/1.0);
      FAIL() << "expected std::invalid_argument for " << spec_text;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(key), std::string::npos) << what;
    }
  };
  expect_range_throw("matrix=poisson n=6 sweep=1 fault=class1 batch=0",
                     "batch");
  expect_range_throw("matrix=poisson n=6 sweep=1 fault=class1 batch=-4",
                     "batch");
  expect_range_throw("matrix=poisson n=6 sweep=1 fault=class1 inner=0",
                     "inner");
  expect_range_throw("matrix=poisson n=6 sweep=1 fault=class1 inner=-25",
                     "inner");
  // The zero cases state what IS valid.
  try {
    (void)experiment::sweep_config_from_spec(
        ScenarioSpec::parse("matrix=poisson n=6 sweep=1 fault=class1 inner=0"),
        1.0);
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("inner >= 1"), std::string::npos)
        << e.what();
  }
  try {
    (void)experiment::sweep_config_from_spec(
        ScenarioSpec::parse("matrix=poisson n=6 sweep=1 fault=class1 batch=0"),
        1.0);
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("batch >= 1"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Resilient sweep runtime keys: guards, recovery, journal, workers.
// ---------------------------------------------------------------------------

TEST(Scenario, GuardKeysReachTheSolverOptions) {
  const auto opts = experiment::solver_options_from_spec(
      ScenarioSpec::parse("deadline=2.5 divergence=50"));
  EXPECT_DOUBLE_EQ(opts.deadline_seconds, 2.5);
  EXPECT_DOUBLE_EQ(opts.divergence_factor, 50.0);
  // Negative guard values are rejected with the valid range.
  EXPECT_THROW((void)experiment::solver_options_from_spec(
                   ScenarioSpec::parse("deadline=-1")),
               std::invalid_argument);
  EXPECT_THROW((void)experiment::solver_options_from_spec(
                   ScenarioSpec::parse("divergence=-3")),
               std::invalid_argument);
}

TEST(Scenario, RecoveryKeyNeedsADetector) {
  // A recovery mode nothing can trigger would silently run unprotected.
  EXPECT_THROW((void)experiment::run_injection_sweep(ScenarioSpec::parse(
                   "matrix=poisson n=6 sweep=1 fault=class1 "
                   "recovery=retry_reliable")),
               std::invalid_argument);
  EXPECT_THROW((void)experiment::run_scenario(
                   "matrix=poisson n=6 recovery=retry_reliable"),
               std::invalid_argument);
  // Unknown recovery names list the registered modes.
  try {
    (void)experiment::run_injection_sweep(ScenarioSpec::parse(
        "matrix=poisson n=6 sweep=1 fault=class1 detector=bound "
        "recovery=bogus"));
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("retry_reliable"),
              std::string::npos)
        << e.what();
  }
}

TEST(Scenario, RecoveryKeyDrivesDetectorTriggeredRecovery) {
  // retry_reliable heals every detected class-1 fault back to the
  // failure-free outer count; with plain abort some sites pay extra outer
  // iterations.  The counters surface through SweepResult.
  const char* base =
      "matrix=poisson n=6 inner=5 sweep=1 fault=class1 detector=bound";
  auto retry = ScenarioSpec::parse(base);
  retry.set("recovery", "retry_reliable");
  const auto sweep = experiment::run_injection_sweep(retry);
  EXPECT_GT(sweep.detected_runs(), 0u);
  EXPECT_EQ(sweep.retried_reliable(), sweep.detected_runs());
  EXPECT_EQ(sweep.max_outer_increase(), 0u);
  EXPECT_EQ(sweep.unchanged_runs(), sweep.points.size());

  auto restart = ScenarioSpec::parse(base);
  restart.set("recovery", "restart_outer");
  const auto restarted = experiment::run_injection_sweep(restart);
  EXPECT_EQ(restarted.restarted_outer(), restarted.detected_runs());
  EXPECT_EQ(restarted.failed_runs(), 0u);
}

TEST(Scenario, ResumeWithoutJournalIsRejected) {
  EXPECT_THROW((void)experiment::run_injection_sweep(ScenarioSpec::parse(
                   "matrix=poisson n=6 sweep=1 fault=class1 resume=1")),
               std::invalid_argument);
}

TEST(Scenario, WorkerKeysValidate) {
  EXPECT_THROW((void)experiment::shard_options_from_spec(
                   ScenarioSpec::parse("workers=0")),
               std::invalid_argument);
  EXPECT_THROW((void)experiment::shard_options_from_spec(
                   ScenarioSpec::parse("workers=2 worker_timeout=-1")),
               std::invalid_argument);
  const auto shard = experiment::shard_options_from_spec(
      ScenarioSpec::parse("workers=3 worker_timeout=2.5"));
  EXPECT_EQ(shard.workers, 3u);
  EXPECT_DOUBLE_EQ(shard.worker_timeout_seconds, 2.5);
  // Sharding requires a journal: the merged result derives from it.
  EXPECT_THROW((void)experiment::run_injection_sweep(ScenarioSpec::parse(
                   "matrix=poisson n=6 sweep=1 fault=class1 workers=2")),
               std::invalid_argument);
}

TEST(Scenario, MtxErrorsNameThePath) {
  try {
    (void)experiment::run_scenario("matrix=mtx:/no/such/file.mtx");
    FAIL() << "expected a throw";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("/no/such/file.mtx"), std::string::npos) << what;
    EXPECT_NE(what.find("cannot open"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// ScenarioSpec::parse_file (job-file parsing: duplicates are errors)
// ---------------------------------------------------------------------------

namespace {

std::string spec_file(const char* name, const std::string& body) {
  const std::string path = testing::TempDir() + "sdcgmres_spec_" + name +
                           "_" + std::to_string(::getpid()) + ".spec";
  std::ofstream(path, std::ios::trunc) << body;
  return path;
}

} // namespace

TEST(ScenarioSpecFile, ParsesMultiLineSpecsWithComments) {
  const std::string path = spec_file("ok",
                                     "# a queued job\n"
                                     "matrix=poisson n=20   # inline note\n"
                                     "\n"
                                     "  inner=10 sweep=1\n");
  const auto spec = ScenarioSpec::parse_file(path);
  EXPECT_EQ(spec.to_string(), "matrix=poisson n=20 inner=10 sweep=1");
}

TEST(ScenarioSpecFile, RejectsDuplicateKeysWithBothLineNumbers) {
  const std::string path = spec_file("dup",
                                     "matrix=poisson\n"
                                     "n=20\n"
                                     "n=40\n");
  try {
    (void)ScenarioSpec::parse_file(path);
    FAIL() << "duplicate key must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos);
    EXPECT_NE(what.find("duplicate key 'n' at line 3"), std::string::npos);
    EXPECT_NE(what.find("first assigned at line 2"), std::string::npos);
  }
}

TEST(ScenarioSpecFile, RejectsMalformedTokensWithLineNumber) {
  const std::string path = spec_file("tok", "matrix=poisson\ngarbage\n");
  try {
    (void)ScenarioSpec::parse_file(path);
    FAIL() << "a token without '=' must be rejected";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'garbage' at line 2"), std::string::npos);
  }
}

TEST(ScenarioSpecFile, UnreadableFileThrowsWithPath) {
  const std::string path = testing::TempDir() + "sdcgmres_spec_absent_" +
                           std::to_string(::getpid()) + ".spec";
  try {
    (void)ScenarioSpec::parse_file(path);
    FAIL() << "a missing spec file must be an error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(ScenarioSpecFile, CommandLineParseStillMergesLastWins) {
  // The contrast that justifies parse_file's strictness: on a command
  // line, a later token deliberately overrides an earlier one.
  const auto spec = ScenarioSpec::parse("n=20 n=40");
  EXPECT_EQ(spec.get_size("n", 0), 40u);
}
