#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "gen/poisson.hpp"
#include "krylov/arnoldi.hpp"
#include "krylov/gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"

namespace sdc = sdcgmres::sdc;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

TEST(Detector, RejectsInvalidBound) {
  EXPECT_THROW(sdc::HessenbergBoundDetector(0.0), std::invalid_argument);
  EXPECT_THROW(sdc::HessenbergBoundDetector(-1.0), std::invalid_argument);
  EXPECT_THROW(
      sdc::HessenbergBoundDetector(std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

TEST(Detector, NoFalsePositivesOnCleanSolve) {
  // Soundness on a fault-free run: the invariant |h| <= ||A||_F can never
  // fire (this is Eq. 3 of the paper).
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  (void)krylov::arnoldi(op, la::ones(64), 20, krylov::Orthogonalization::MGS,
                        &detector);
  EXPECT_GT(detector.checks(), 0u);
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_FALSE(detector.triggered());
}

TEST(Detector, CatchesClass1Fault) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      1, sdc::MgsPosition::First, sdc::fault_classes::very_large()));
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  krylov::HookChain chain({&campaign, &detector});
  (void)krylov::arnoldi(op, la::ones(64), 10, krylov::Orthogonalization::MGS,
                        &chain);
  EXPECT_TRUE(campaign.fired());
  EXPECT_TRUE(detector.triggered());
  ASSERT_GE(detector.log().size(), 1u);
  const auto& e = detector.log().events()[0];
  EXPECT_EQ(e.kind, sdc::EventKind::Detection);
  EXPECT_EQ(e.iteration, 1u);
  EXPECT_GT(std::abs(e.value_before), e.bound);
}

TEST(Detector, MissesClass2And3FaultsByDesign) {
  // The paper is explicit: we know precisely what is *not* detectable.
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  for (const auto model : {sdc::fault_classes::slightly_smaller(),
                           sdc::fault_classes::nearly_zero()}) {
    sdc::FaultCampaign campaign(
        sdc::InjectionPlan::hessenberg(1, sdc::MgsPosition::First, model));
    sdc::HessenbergBoundDetector detector(A.frobenius_norm());
    krylov::HookChain chain({&campaign, &detector});
    (void)krylov::arnoldi(op, la::ones(64), 10,
                          krylov::Orthogonalization::MGS, &chain);
    EXPECT_TRUE(campaign.fired());
    EXPECT_FALSE(detector.triggered()) << sdc::to_string(model);
  }
}

TEST(Detector, FlagsNaN) {
  // NaN fails |h| <= bound because all NaN comparisons are false.
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::InjectionPlan plan;
  plan.aggregate_iteration = 2;
  plan.model =
      sdc::FaultModel::set_value(std::numeric_limits<double>::quiet_NaN());
  sdc::FaultCampaign campaign(plan);
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  krylov::HookChain chain({&campaign, &detector});
  (void)krylov::arnoldi(op, la::ones(36), 6, krylov::Orthogonalization::MGS,
                        &chain);
  EXPECT_TRUE(detector.triggered());
}

TEST(Detector, FlagsInfinity) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::InjectionPlan plan;
  plan.aggregate_iteration = 2;
  plan.model =
      sdc::FaultModel::set_value(std::numeric_limits<double>::infinity());
  sdc::FaultCampaign campaign(plan);
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  krylov::HookChain chain({&campaign, &detector});
  (void)krylov::arnoldi(op, la::ones(36), 6, krylov::Orthogonalization::MGS,
                        &chain);
  EXPECT_TRUE(detector.triggered());
}

TEST(Detector, ChecksSubdiagonalToo) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::InjectionPlan plan;
  plan.target = sdc::InjectionTarget::SubdiagonalNorm;
  plan.aggregate_iteration = 1;
  plan.model = sdc::FaultModel::scale(1e200);
  sdc::FaultCampaign campaign(plan);
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  krylov::HookChain chain({&campaign, &detector});
  (void)krylov::arnoldi(op, la::ones(36), 6, krylov::Orthogonalization::MGS,
                        &chain);
  EXPECT_TRUE(detector.triggered());
}

TEST(Detector, AbortResponseStopsInnerGmres) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      4, sdc::MgsPosition::First, sdc::fault_classes::very_large()));
  sdc::HessenbergBoundDetector detector(A.frobenius_norm(),
                                        sdc::DetectorResponse::AbortSolve);
  krylov::HookChain chain({&campaign, &detector});
  krylov::GmresOptions opts;
  opts.max_iters = 25;
  opts.tol = 0.0;
  const auto res =
      krylov::gmres(op, la::ones(64), la::zeros(64), opts, &chain, 0);
  EXPECT_EQ(res.status, krylov::SolveStatus::AbortedByDetector);
  // The fault hit aggregate iteration 4 -> the solve used only the 4
  // clean columns built before the tainted one.
  EXPECT_EQ(res.iterations, 4u);
  EXPECT_TRUE(la::all_finite(res.x));
}

TEST(Detector, RecordOnlyResponseDoesNotAbort) {
  // In observation mode the solver continues past the fault.  (A huge
  // fault makes the next basis vector nearly parallel to q_0, so the run
  // may legitimately end in a *false* happy breakdown a couple of
  // iterations later -- the failure mode the FGMRES rank check exists
  // for.  What must NOT happen here is an abort.)
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      4, sdc::MgsPosition::First, sdc::fault_classes::very_large()));
  sdc::HessenbergBoundDetector detector(A.frobenius_norm(),
                                        sdc::DetectorResponse::RecordOnly);
  krylov::HookChain chain({&campaign, &detector});
  krylov::GmresOptions opts;
  opts.max_iters = 25;
  opts.tol = 0.0;
  const auto res =
      krylov::gmres(op, la::ones(64), la::zeros(64), opts, &chain, 0);
  EXPECT_NE(res.status, krylov::SolveStatus::AbortedByDetector);
  EXPECT_GT(res.iterations, 4u); // continued past the fault
  EXPECT_TRUE(detector.triggered());
}

TEST(Detector, FalseHappyBreakdownAfterUndetectedResponseToHugeFault) {
  // Companion to the test above, pinning down the observed degenerate
  // mechanism: h(0,4) *= 1e150 leaves v ~ -1e150*q_0, so q_5 ~ -q_0 and
  // A*q_5 lies in the existing span -- a spurious invariant subspace.
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      4, sdc::MgsPosition::First, sdc::fault_classes::very_large()));
  krylov::GmresOptions opts;
  opts.max_iters = 25;
  opts.tol = 0.0;
  const auto res =
      krylov::gmres(op, la::ones(64), la::zeros(64), opts, &campaign, 0);
  EXPECT_EQ(res.status, krylov::SolveStatus::HappyBreakdown);
  EXPECT_LT(res.iterations, 10u);
}

TEST(Detector, AbortFlagClearsOnNextSolve) {
  sdc::HessenbergBoundDetector detector(1.0,
                                        sdc::DetectorResponse::AbortSolve);
  krylov::ArnoldiContext ctx{};
  double bad = 100.0;
  detector.on_projection_coefficient(ctx, 0, 1, bad);
  EXPECT_TRUE(detector.abort_requested());
  detector.on_solve_begin(1);
  EXPECT_FALSE(detector.abort_requested());
  EXPECT_EQ(detector.detections(), 1u); // history preserved
}

TEST(Detector, ResetClearsEverything) {
  sdc::HessenbergBoundDetector detector(1.0);
  krylov::ArnoldiContext ctx{};
  double bad = 5.0;
  detector.on_projection_coefficient(ctx, 0, 1, bad);
  ASSERT_EQ(detector.detections(), 1u);
  detector.reset();
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_EQ(detector.checks(), 0u);
  EXPECT_TRUE(detector.log().empty());
}

TEST(Detector, BoundaryValueExactlyAtBoundPasses) {
  sdc::HessenbergBoundDetector detector(2.0);
  krylov::ArnoldiContext ctx{};
  double h = 2.0;
  detector.on_projection_coefficient(ctx, 0, 1, h);
  EXPECT_FALSE(detector.triggered());
  h = -2.0;
  detector.on_projection_coefficient(ctx, 0, 1, h);
  EXPECT_FALSE(detector.triggered());
  h = 2.0000001;
  detector.on_projection_coefficient(ctx, 0, 1, h);
  EXPECT_TRUE(detector.triggered());
}

TEST(Detector, DoesNotMutateCheckedValues) {
  sdc::HessenbergBoundDetector detector(1.0);
  krylov::ArnoldiContext ctx{};
  double h = 42.0;
  detector.on_projection_coefficient(ctx, 0, 1, h);
  EXPECT_EQ(h, 42.0); // detection, not correction
}
