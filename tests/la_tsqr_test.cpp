#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/block.hpp"
#include "la/tsqr.hpp"

namespace la = sdcgmres::la;

namespace {

/// Deterministic random panel in a BlockWorkspace arena (padding included).
template <typename S>
la::BlockWorkspaceT<S> random_panel(std::size_t n, std::size_t m,
                                    unsigned seed) {
  la::BlockWorkspaceT<S> ws(n, m);
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t j = 0; j < m; ++j) {
    auto col = ws.col(j);
    for (std::size_t i = 0; i < n; ++i) col[i] = static_cast<S>(dist(gen));
  }
  return ws;
}

/// max |(Q*R - A0)(i,j)| over the panel.
template <typename S>
double reconstruction_error(la::BlockViewT<S> q, const std::vector<S>& r,
                            std::size_t ldr,
                            const std::vector<std::vector<S>>& original) {
  double worst = 0.0;
  const std::size_t m = q.cols();
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < q.rows(); ++i) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= j; ++k) {
        acc += static_cast<double>(q.col(k)[i]) *
               static_cast<double>(r[k + j * ldr]);
      }
      worst = std::max(worst,
                       std::abs(acc - static_cast<double>(original[j][i])));
    }
  }
  return worst;
}

/// max |(Q^T Q - I)(i,j)|.
template <typename S>
double ortho_defect(la::BlockViewT<S> q) {
  double worst = 0.0;
  for (std::size_t a = 0; a < q.cols(); ++a) {
    for (std::size_t b = 0; b < q.cols(); ++b) {
      double acc = 0.0;
      for (std::size_t i = 0; i < q.rows(); ++i) {
        acc += static_cast<double>(q.col(a)[i]) *
               static_cast<double>(q.col(b)[i]);
      }
      worst = std::max(worst, std::abs(acc - (a == b ? 1.0 : 0.0)));
    }
  }
  return worst;
}

template <typename S>
std::vector<std::vector<S>> snapshot(la::BlockViewT<S> p) {
  std::vector<std::vector<S>> out(p.cols());
  for (std::size_t j = 0; j < p.cols(); ++j) {
    out[j].assign(p.col(j).begin(), p.col(j).end());
  }
  return out;
}

/// CGS2 reference orthonormalization of the same panel (two full classical
/// Gram-Schmidt passes + normalization), for defect comparison.
double cgs2_defect(const std::vector<std::vector<double>>& cols) {
  const std::size_t m = cols.size();
  const std::size_t n = cols[0].size();
  std::vector<std::vector<double>> q = cols;
  for (std::size_t j = 0; j < m; ++j) {
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < j; ++i) {
        double h = la::dot(std::span<const double>(q[i]),
                           std::span<const double>(q[j]));
        la::axpy(-h, std::span<const double>(q[i]), std::span<double>(q[j]));
      }
    }
    double norm = la::nrm2(std::span<const double>(q[j]));
    la::scal(1.0 / norm, std::span<double>(q[j]));
  }
  double worst = 0.0;
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += q[a][i] * q[b][i];
      worst = std::max(worst, std::abs(acc - (a == b ? 1.0 : 0.0)));
    }
  }
  return worst;
}

} // namespace

TEST(Tsqr, ReconstructsAndOrthogonalizesRandomPanel) {
  const std::size_t n = 300, m = 5;
  auto ws = random_panel<double>(n, m, 42u);
  auto panel = ws.view(m);
  const auto original = snapshot(panel);

  std::vector<double> r(m * m, -1.0);
  la::tsqr(panel, r.data(), m, /*panel_rows=*/64);

  EXPECT_LT(reconstruction_error(panel, r, m, original), 1e-12);
  EXPECT_LT(ortho_defect(panel), 1e-13);
  for (std::size_t j = 0; j < m; ++j) {
    EXPECT_GE(r[j + j * m], 0.0) << "diagonal must be nonnegative";
    for (std::size_t i = j + 1; i < m; ++i) {
      EXPECT_EQ(r[i + j * m], 0.0) << "below-diagonal must be zeroed";
    }
  }
  // TSQR's defect must be at least as good as the CGS2 reference's.
  EXPECT_LE(ortho_defect(panel), std::max(cgs2_defect(original), 1e-14));
}

TEST(Tsqr, SinglePanelWhenPanelRowsExceedRows) {
  const std::size_t n = 100, m = 4;
  auto ws = random_panel<double>(n, m, 7u);
  auto panel = ws.view(m);
  const auto original = snapshot(panel);
  std::vector<double> r(m * m, 0.0);
  la::tsqr(panel, r.data(), m, /*panel_rows=*/4096);
  EXPECT_LT(reconstruction_error(panel, r, m, original), 1e-12);
  EXPECT_LT(ortho_defect(panel), 1e-13);
}

TEST(Tsqr, NearRankDeficientPanelStaysOrthonormal) {
  const std::size_t n = 200, m = 4;
  auto ws = random_panel<double>(n, m, 11u);
  // Column 2 := column 1 + tiny perturbation of column 0.
  for (std::size_t i = 0; i < n; ++i) {
    ws.col(2)[i] = ws.col(1)[i] + 1e-13 * ws.col(0)[i];
  }
  auto panel = ws.view(m);
  const auto original = snapshot(panel);
  std::vector<double> r(m * m, 0.0);
  la::tsqr(panel, r.data(), m, 64);
  // Q must stay orthonormal even though R(2,2) is ~1e-13.
  EXPECT_LT(ortho_defect(panel), 1e-12);
  EXPECT_LT(reconstruction_error(panel, r, m, original), 1e-12);
  EXPECT_LT(r[2 + 2 * m], 1e-10);
}

TEST(Tsqr, ExactlyDependentColumnYieldsZeroDiagonal) {
  const std::size_t n = 64, m = 3;
  la::BlockWorkspaceT<double> ws(n, m);
  std::mt19937 gen(3u);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    ws.col(0)[i] = dist(gen);
    ws.col(1)[i] = 2.0 * ws.col(0)[i]; // exactly dependent
    ws.col(2)[i] = dist(gen);
  }
  auto panel = ws.view(m);
  std::vector<double> r(m * m, 0.0);
  la::tsqr(panel, r.data(), m, 16);
  EXPECT_NEAR(r[1 + 1 * m], 0.0, 1e-13);
  EXPECT_LT(ortho_defect(panel), 1e-12);
}

TEST(Tsqr, PaddedLeadingDimensionArena) {
  // rows = 512 doubles triggers the anti-aliasing pad: ld = 520 != rows.
  const std::size_t n = 512, m = 6;
  auto ws = random_panel<double>(n, m, 99u);
  ASSERT_GT(ws.ld(), n);
  auto panel = ws.view(m);
  const auto original = snapshot(panel);
  std::vector<double> r(m * m, 0.0);
  la::tsqr(panel, r.data(), m, 100);
  EXPECT_LT(reconstruction_error(panel, r, m, original), 1e-12);
  EXPECT_LT(ortho_defect(panel), 1e-13);
}

TEST(Tsqr, FloatPanelWorks) {
  const std::size_t n = 150, m = 4;
  auto ws = random_panel<float>(n, m, 21u);
  auto panel = ws.view(m);
  const auto original = snapshot(panel);
  std::vector<float> r(m * m, 0.0f);
  la::tsqr(panel, r.data(), m, 32);
  EXPECT_LT(reconstruction_error(panel, r, m, original), 1e-4);
  EXPECT_LT(ortho_defect(panel), 1e-5);
  for (std::size_t j = 0; j < m; ++j) EXPECT_GE(r[j + j * m], 0.0f);
}

TEST(Tsqr, BitwiseThreadInvariant) {
#ifndef _OPENMP
  GTEST_SKIP() << "OpenMP not enabled";
#else
  const std::size_t n = 1000, m = 5;
  auto run = [&](int threads) {
    const int saved = omp_get_max_threads();
    omp_set_num_threads(threads);
    auto ws = random_panel<double>(n, m, 5u);
    auto panel = ws.view(m);
    std::vector<double> r(m * m, 0.0);
    la::tsqr(panel, r.data(), m, /*panel_rows=*/128); // 7 panels
    omp_set_num_threads(saved);
    std::vector<std::vector<double>> q = snapshot(panel);
    return std::make_pair(q, r);
  };
  const auto serial = run(1);
  const auto threaded = run(4);
  ASSERT_EQ(serial.second.size(), threaded.second.size());
  for (std::size_t i = 0; i < serial.second.size(); ++i) {
    EXPECT_EQ(serial.second[i], threaded.second[i]) << "R entry " << i;
  }
  for (std::size_t j = 0; j < m; ++j) {
    ASSERT_EQ(serial.first[j].size(), threaded.first[j].size());
    EXPECT_EQ(0, std::memcmp(serial.first[j].data(), threaded.first[j].data(),
                             serial.first[j].size() * sizeof(double)))
        << "Q column " << j;
  }
#endif
}

TEST(Tsqr, RejectsBadShapes) {
  la::BlockWorkspaceT<double> ws(4, 6);
  std::vector<double> r(36, 0.0);
  EXPECT_THROW(la::tsqr(ws.view(6), r.data(), 6), std::invalid_argument);
  EXPECT_THROW(la::tsqr(ws.view(0), r.data(), 6), std::invalid_argument);
  EXPECT_THROW(la::tsqr(ws.view(4), r.data(), 2), std::invalid_argument);
}
