/// \file krylov_mixed_precision_test.cpp
/// \brief The mixed-precision inner data plane of FT-GMRES: (double,
/// int32) bitwise identity with the default, the float-inner convergence
/// envelope on the paper's Figure-3 scenario grid, spec-key validation,
/// non-CSR rejection, and the bytes-streamed accounting of the mirror.
///
/// Envelope contract (documented here, asserted below): a float32 inner
/// plane is just another bounded perturbation of the unreliable inner
/// solves, so the flexible outer absorbs it the way it absorbs injected
/// faults -- every failure-free float solve must converge with at most
/// FLOAT_OUTER_SLACK more outer iterations than the all-double solve of
/// the same scenario.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiment/scenario.hpp"
#include "experiment/scenario_spec.hpp"
#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/ft_gmres_batch.hpp"
#include "krylov/mixed.hpp"
#include "krylov/operator.hpp"
#include "la/blas1.hpp"
#include "la/vector.hpp"

namespace krylov = sdcgmres::krylov;
namespace experiment = sdcgmres::experiment;
namespace sparse = sdcgmres::sparse;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

/// Documented float-inner outer-iteration slack (see file comment).
constexpr std::size_t FLOAT_OUTER_SLACK = 2;

la::Vector ones(std::size_t n) {
  la::Vector b(n);
  b.fill(1.0);
  return b;
}

krylov::FtGmresOptions paper_options() {
  krylov::FtGmresOptions opts; // inner: 25 iterations, tol 0
  opts.outer.tol = 1e-8;
  opts.outer.max_outer = 200;
  return opts;
}

} // namespace

TEST(MixedPrecisionFtGmres, DoubleInt32IsBitwiseIdenticalToDefault) {
  // Index narrowing never touches the arithmetic: iterate, residual, and
  // iteration counts must be bitwise equal to the default plane.
  const auto A = gen::convection_diffusion2d(20, 1.0, 0.5); // n = 400
  const la::Vector b = ones(A.rows());
  const auto opts = paper_options();

  const auto ref = krylov::ft_gmres(A, b, opts);
  ASSERT_EQ(ref.status, krylov::SolveStatus::Converged);

  auto opts32 = opts;
  opts32.index_width = krylov::IndexWidth::I32;
  const auto got = krylov::ft_gmres(A, b, opts32);
  EXPECT_EQ(got.status, ref.status);
  EXPECT_EQ(got.outer_iterations, ref.outer_iterations);
  EXPECT_EQ(got.total_inner_iterations, ref.total_inner_iterations);
  EXPECT_EQ(got.residual_norm, ref.residual_norm);
  ASSERT_EQ(got.x.size(), ref.x.size());
  for (std::size_t i = 0; i < ref.x.size(); ++i) {
    EXPECT_EQ(got.x[i], ref.x[i]) << i;
  }
}

TEST(MixedPrecisionFtGmres, BatchedDoubleInt32IsBitwiseIdenticalToDefault) {
  const auto A = gen::poisson2d(20); // n = 400
  const krylov::CsrOperator op(A);
  std::vector<la::Vector> bs;
  for (std::size_t i = 0; i < 3; ++i) {
    la::Vector b(A.rows());
    for (std::size_t j = 0; j < b.size(); ++j) {
      b[j] = 1.0 + 0.01 * static_cast<double>((i + j) % 7);
    }
    bs.push_back(std::move(b));
  }
  const auto opts = paper_options();
  const auto ref = krylov::ft_gmres_batch(op, bs, opts);

  auto opts32 = opts;
  opts32.index_width = krylov::IndexWidth::I32;
  const auto got = krylov::ft_gmres_batch(op, bs, opts32);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t r = 0; r < ref.size(); ++r) {
    EXPECT_EQ(got[r].outer_iterations, ref[r].outer_iterations) << r;
    EXPECT_EQ(got[r].residual_norm, ref[r].residual_norm) << r;
    for (std::size_t i = 0; i < ref[r].x.size(); ++i) {
      EXPECT_EQ(got[r].x[i], ref[r].x[i]) << r << "," << i;
    }
  }
}

TEST(MixedPrecisionFtGmres, FloatInnerConvergesWithinEnvelopeOnFig3Grid) {
  // The failure-free corner of the paper's Figure-3 scenario grid: the
  // Poisson model problem and a nonsymmetric convection-diffusion
  // variant, solo and batched, inner = 25 / tol = 0 / outer tol = 1e-8.
  struct Cell {
    const char* name;
    sparse::CsrMatrix A;
  };
  std::vector<Cell> grid;
  grid.push_back({"poisson-40", gen::poisson2d(40)});
  grid.push_back({"poisson-20", gen::poisson2d(20)});
  grid.push_back({"convdiff-20", gen::convection_diffusion2d(20, 1.0, 0.5)});

  for (const Cell& cell : grid) {
    const la::Vector b = ones(cell.A.rows());
    const auto opts = paper_options();
    const auto ref = krylov::ft_gmres(cell.A, b, opts);
    ASSERT_EQ(ref.status, krylov::SolveStatus::Converged) << cell.name;

    auto fopts = opts;
    fopts.precision = krylov::Precision::Float;
    fopts.index_width = krylov::IndexWidth::I32;
    const auto got = krylov::ft_gmres(cell.A, b, fopts);
    EXPECT_EQ(got.status, krylov::SolveStatus::Converged) << cell.name;
    EXPECT_LE(got.outer_iterations,
              ref.outer_iterations + FLOAT_OUTER_SLACK)
        << cell.name;
    // The outer residual check is the reliable (double) plane either
    // way, so the converged float run meets the same (relative)
    // tolerance as the all-double one.
    EXPECT_LE(got.residual_norm, opts.outer.tol * la::nrm2(b)) << cell.name;

    // Batched lockstep float: same envelope per instance.
    const krylov::CsrOperator op(cell.A);
    const std::vector<la::Vector> bs(4, b);
    const auto batch = krylov::ft_gmres_batch(op, bs, fopts);
    for (const auto& r : batch) {
      EXPECT_EQ(r.status, krylov::SolveStatus::Converged) << cell.name;
      EXPECT_LE(r.outer_iterations, ref.outer_iterations + FLOAT_OUTER_SLACK)
          << cell.name;
    }
  }
}

TEST(MixedPrecisionFtGmres, FloatInnerRequiresCsrBackedOperator) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator csr(A);
  const krylov::ScaledOperator scaled(csr, 1.0); // not CSR-backed
  const la::Vector b = ones(A.rows());
  auto opts = paper_options();
  opts.precision = krylov::Precision::Float;
  EXPECT_THROW((void)krylov::ft_gmres(scaled, b, opts),
               std::invalid_argument);
  opts.precision = krylov::Precision::Double;
  opts.index_width = krylov::IndexWidth::I32;
  EXPECT_THROW((void)krylov::ft_gmres(scaled, b, opts),
               std::invalid_argument);
  // The same non-CSR operator is fine on the default plane.
  opts.index_width = krylov::IndexWidth::I64;
  EXPECT_EQ(krylov::ft_gmres(scaled, b, opts).status,
            krylov::SolveStatus::Converged);
}

TEST(MixedPrecisionFtGmres, MirrorCountsNarrowedBytes) {
  const auto A = gen::poisson2d(10); // n = 100
  const sparse::CsrMatrixT<float, std::int32_t> M(A);
  const krylov::MixedCsrOperator<float, std::int32_t> op(M);
  std::vector<float> x(A.cols(), 1.0f), y(A.rows());
  op.apply(std::span<const float>(x), std::span<float>(y));
  const auto s = op.stats();
  EXPECT_EQ(s.apply_calls, 1u);
  EXPECT_EQ(s.scalar_bytes,
            sizeof(float) * (A.nnz() + A.rows() + A.cols()));
  EXPECT_EQ(s.index_bytes, sizeof(std::int32_t) * (A.nnz() + A.rows() + 1));
  // Same stream on the double/size_t CsrOperator costs exactly 2x in
  // both categories -- the traffic halving the bench demonstrates.
  const krylov::CsrOperator dop(A);
  la::Vector xd(A.cols()), yd(A.rows());
  xd.fill(1.0);
  dop.apply(std::span<const double>(xd.span()), yd.span());
  const auto sd = dop.stats();
  EXPECT_EQ(sd.scalar_bytes, 2 * s.scalar_bytes);
  EXPECT_EQ(sd.index_bytes, 2 * s.index_bytes);
}

TEST(MixedPrecisionScenario, SpecKeysValidate) {
  using experiment::ScenarioSpec;
  try {
    (void)experiment::run_scenario(
        ScenarioSpec::parse("solver=ft_gmres matrix=poisson n=6 precision=half"));
    FAIL() << "precision=half must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precision"), std::string::npos) << what;
    EXPECT_NE(what.find("double float"), std::string::npos) << what;
  }
  try {
    (void)experiment::run_scenario(
        ScenarioSpec::parse("solver=ft_gmres matrix=poisson n=6 index=16"));
    FAIL() << "index=16 must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("index"), std::string::npos) << what;
    EXPECT_NE(what.find("32 64"), std::string::npos) << what;
  }
  // Mixed keys apply to the nested solvers only.
  try {
    (void)experiment::run_scenario(
        ScenarioSpec::parse("solver=gmres matrix=poisson n=6 precision=float"));
    FAIL() << "precision=float on plain gmres must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ft_gmres"), std::string::npos) << what;
  }
}

TEST(MixedPrecisionScenario, SpecDrivenPlanesMatchDefaultScenario) {
  using experiment::ScenarioSpec;
  const auto base = experiment::run_scenario(
      ScenarioSpec::parse("solver=ft_gmres matrix=poisson n=20"));
  ASSERT_TRUE(base.report.converged());

  // index=32 through the registry: bitwise identical solve.
  const auto i32 = experiment::run_scenario(
      ScenarioSpec::parse("solver=ft_gmres matrix=poisson n=20 index=32"));
  EXPECT_EQ(i32.report.iterations, base.report.iterations);
  EXPECT_EQ(i32.report.residual_norm, base.report.residual_norm);

  // precision=float index=32 through the registry: converges within the
  // documented envelope; same for the batched solver.
  for (const char* spec :
       {"solver=ft_gmres matrix=poisson n=20 precision=float index=32",
        "solver=ft_gmres_batch matrix=poisson n=20 precision=float index=32"}) {
    const auto f = experiment::run_scenario(ScenarioSpec::parse(spec));
    EXPECT_TRUE(f.report.converged()) << spec;
    EXPECT_LE(f.report.iterations,
              base.report.iterations + FLOAT_OUTER_SLACK)
        << spec;
  }
}
