#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "experiment/scenario_spec.hpp"
#include "service/artifacts.hpp"
#include "service/cache.hpp"

namespace service = sdcgmres::service;
namespace experiment = sdcgmres::experiment;

namespace {

/// Builder for a string artifact of a stated size; counts invocations.
service::ArtifactCache::Builder sized(std::size_t bytes, int* builds) {
  return [bytes, builds] {
    if (builds != nullptr) ++*builds;
    return std::pair<std::shared_ptr<const void>, std::size_t>(
        std::make_shared<const std::string>("artifact"), bytes);
  };
}

} // namespace

TEST(ArtifactCache, HitAfterMissAndCounters) {
  service::ArtifactCache cache(1024);
  int builds = 0;
  const auto first = cache.get_or_build("k", sized(100, &builds));
  const auto second = cache.get_or_build("k", sized(100, &builds));
  EXPECT_EQ(builds, 1) << "the second lookup must not rebuild";
  EXPECT_EQ(first.get(), second.get()) << "hits share the instance";
  const service::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 100u);
  EXPECT_EQ(stats.byte_budget, 1024u);
}

TEST(ArtifactCache, EvictsLeastRecentlyUsedUnderTightBudget) {
  service::ArtifactCache cache(250);
  (void)cache.get_or_build("a", sized(100, nullptr));
  (void)cache.get_or_build("b", sized(100, nullptr));
  // Touch "a" so "b" is the LRU victim when "c" overflows the budget.
  (void)cache.get_or_build("a", sized(100, nullptr));
  (void)cache.get_or_build("c", sized(100, nullptr));
  service::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 200u);
  // "a" survived (recently used): looking it up is a hit...
  const std::size_t hits_before = stats.hits;
  (void)cache.get_or_build("a", sized(100, nullptr));
  EXPECT_EQ(cache.stats().hits, hits_before + 1);
  // ...and "b" was the victim: looking it up is a miss that rebuilds.
  int rebuilds = 0;
  (void)cache.get_or_build("b", sized(100, &rebuilds));
  EXPECT_EQ(rebuilds, 1);
}

TEST(ArtifactCache, EvictionNeverInvalidatesHeldArtifacts) {
  service::ArtifactCache cache(100);
  const auto held = cache.get_or_build("a", sized(100, nullptr));
  (void)cache.get_or_build("b", sized(100, nullptr)); // evicts "a"
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(*std::static_pointer_cast<const std::string>(held), "artifact")
      << "the holder's shared_ptr keeps the evicted artifact alive";
}

TEST(ArtifactCache, OversizeArtifactsAreBuiltButNeverStored) {
  service::ArtifactCache cache(50);
  int builds = 0;
  const auto value = cache.get_or_build("big", sized(100, &builds));
  EXPECT_NE(value, nullptr);
  const service::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.oversize, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  // Every lookup rebuilds: it can never become resident.
  (void)cache.get_or_build("big", sized(100, &builds));
  EXPECT_EQ(builds, 2);
}

TEST(ArtifactCache, BuilderExceptionCachesNothing) {
  service::ArtifactCache cache(1024);
  EXPECT_THROW(
      (void)cache.get_or_build(
          "k", []() -> std::pair<std::shared_ptr<const void>, std::size_t> {
            throw std::runtime_error("builder failed");
          }),
      std::runtime_error);
  EXPECT_EQ(cache.stats().entries, 0u);
  int builds = 0;
  (void)cache.get_or_build("k", sized(10, &builds));
  EXPECT_EQ(builds, 1) << "the failed build left no poisoned entry";
}

TEST(ArtifactCache, ConcurrentLookupsShareOneInstance) {
  service::ArtifactCache cache(1u << 20);
  std::vector<std::shared_ptr<const void>> seen(8);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&cache, &seen, t] {
      for (int i = 0; i < 50; ++i) {
        seen[t] = cache.get_or_build(
            "shared", sized(64, nullptr));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const auto& ptr : seen) EXPECT_EQ(ptr.get(), seen[0].get());
  const service::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u) << "exactly one build under contention";
  EXPECT_EQ(stats.hits, 8u * 50u - 1u);
}

TEST(ArtifactCacheArtifacts, ProblemKeyedByEveryProblemInput) {
  service::ArtifactCache cache(64u << 20);
  const auto spec_a = experiment::ScenarioSpec::parse("matrix=poisson n=12");
  const auto spec_b = experiment::ScenarioSpec::parse("matrix=poisson n=13");
  const auto p1 = service::cached_problem(cache, spec_a);
  const auto p2 = service::cached_problem(cache, spec_a);
  const auto p3 = service::cached_problem(cache, spec_b);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_NE(p1.get(), p3.get()) << "n=12 and n=13 must not collide";
  EXPECT_EQ(p1->A.rows(), 144u);
  EXPECT_EQ(p3->A.rows(), 169u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ArtifactCacheArtifacts, CalibrationTransposeMirrorAndPrecond) {
  service::ArtifactCache cache(64u << 20);
  const auto spec = experiment::ScenarioSpec::parse(
      "matrix=poisson n=10 precond=ilu0 solver=gmres");
  const auto problem = service::cached_problem(cache, spec);

  const auto fro = service::cached_calibration(cache, spec, *problem);
  EXPECT_DOUBLE_EQ(*fro, problem->A.frobenius_norm());
  EXPECT_EQ(fro.get(),
            service::cached_calibration(cache, spec, *problem).get());

  const auto at = service::cached_transpose(cache, spec, *problem);
  EXPECT_EQ(at->nnz(), problem->A.nnz());
  // Poisson is symmetric: A^T == A entrywise.
  EXPECT_EQ(at->values(), problem->A.values());

  const auto mirror = service::cached_mirror32(cache, spec, *problem);
  EXPECT_EQ(mirror->nnz(), problem->A.nnz());

  const auto precond = service::cached_preconditioner(cache, spec, *problem);
  ASSERT_NE(precond, nullptr);
  EXPECT_EQ(precond.get(),
            service::cached_preconditioner(cache, spec, *problem).get())
      << "the ILU0 factorization is shared, not refactored";

  const auto none_spec = experiment::ScenarioSpec::parse("matrix=poisson n=10");
  EXPECT_EQ(service::cached_preconditioner(cache, none_spec, *problem),
            nullptr);
}

TEST(ArtifactCacheArtifacts, TightBudgetEvictsProblemsButJobsStillRun) {
  // Budget fits roughly one small problem: a 3-matrix rotation must show
  // evictions while every lookup still returns a usable artifact.
  const auto bytes_of = [](const char* text) {
    service::ArtifactCache probe(1u << 30);
    const auto spec = experiment::ScenarioSpec::parse(text);
    const auto problem = service::cached_problem(probe, spec);
    return service::csr_bytes(problem->A) +
           problem->b.size() * sizeof(double);
  };
  const std::size_t one_problem = bytes_of("matrix=poisson n=12");
  service::ArtifactCache cache(one_problem + one_problem / 2);
  const char* specs[] = {"matrix=poisson n=12", "matrix=poisson n=13",
                         "matrix=poisson n=14"};
  for (int round = 0; round < 2; ++round) {
    for (const char* text : specs) {
      const auto spec = experiment::ScenarioSpec::parse(text);
      const auto problem = service::cached_problem(cache, spec);
      ASSERT_NE(problem, nullptr);
      EXPECT_GT(problem->A.rows(), 0u);
    }
  }
  const service::CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, stats.byte_budget);
}

TEST(ArtifactCacheArtifacts, SellBackendIsCachedCsrIsNot) {
  service::ArtifactCache cache(64u << 20);
  const auto sell_spec = sdcgmres::experiment::ScenarioSpec::parse(
      "matrix=poisson n=10 backend=sell:4:1");
  const auto problem = service::cached_problem(cache, sell_spec);
  const auto before = cache.stats();

  const auto b1 = service::cached_backend(cache, sell_spec, *problem);
  const auto b2 = service::cached_backend(cache, sell_spec, *problem);
  ASSERT_NE(b1, nullptr);
  EXPECT_EQ(b1.get(), b2.get()) << "SELL assembly must be shared";
  EXPECT_EQ(b1->name(), "sell:4:1");
  EXPECT_EQ(cache.stats().hits, before.hits + 1)
      << "the second lookup is a cache hit";
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
  EXPECT_GT(b1->resident_bytes(), 0u);

  // CSR carries no assembled state: it bypasses the cache entirely.
  const auto csr_spec =
      sdcgmres::experiment::ScenarioSpec::parse("matrix=poisson n=10");
  const auto counters = cache.stats();
  const auto c1 = service::cached_backend(cache, csr_spec, *problem);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->name(), "csr");
  EXPECT_EQ(cache.stats().hits, counters.hits);
  EXPECT_EQ(cache.stats().misses, counters.misses);
  EXPECT_EQ(cache.stats().entries, counters.entries);
}

TEST(ArtifactCacheArtifacts, BackendKeyedByGeometryAndMatrix) {
  service::ArtifactCache cache(64u << 20);
  const auto spec_a = sdcgmres::experiment::ScenarioSpec::parse(
      "matrix=poisson n=10 backend=sell:4:1");
  const auto spec_b = sdcgmres::experiment::ScenarioSpec::parse(
      "matrix=poisson n=10 backend=sell:8:1");
  const auto spec_c = sdcgmres::experiment::ScenarioSpec::parse(
      "matrix=poisson n=11 backend=sell:4:1");
  const auto pa = service::cached_problem(cache, spec_a);
  const auto pc = service::cached_problem(cache, spec_c);
  const auto ba = service::cached_backend(cache, spec_a, *pa);
  const auto bb = service::cached_backend(cache, spec_b, *pa);
  const auto bc = service::cached_backend(cache, spec_c, *pc);
  EXPECT_NE(ba.get(), bb.get()) << "different geometry, different entry";
  EXPECT_NE(ba.get(), bc.get()) << "different matrix, different entry";
}

TEST(ArtifactCacheArtifacts, SellMirror32SharedAndCsrSpecThrows) {
  service::ArtifactCache cache(64u << 20);
  const auto spec = sdcgmres::experiment::ScenarioSpec::parse(
      "matrix=poisson n=10 backend=sell");
  const auto problem = service::cached_problem(cache, spec);
  const auto m1 = service::cached_sell_mirror32(cache, spec, *problem);
  const auto m2 = service::cached_sell_mirror32(cache, spec, *problem);
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(m1.get(), m2.get());
  EXPECT_EQ(m1->rows(), problem->A.rows());

  const auto csr_spec =
      sdcgmres::experiment::ScenarioSpec::parse("matrix=poisson n=10");
  EXPECT_THROW(
      (void)service::cached_sell_mirror32(cache, csr_spec, *problem),
      std::invalid_argument);
}
