#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "krylov/orthogonalize.hpp"
#include "la/blas1.hpp"

namespace krylov = sdcgmres::krylov;
namespace la = sdcgmres::la;

namespace {

/// Records every coefficient the hook sees; can also corrupt one of them.
class RecordingHook final : public krylov::ArnoldiHook {
public:
  struct Seen {
    std::size_t i;
    std::size_t mgs_steps;
    double value;
  };
  std::vector<Seen> seen;
  std::size_t corrupt_index = SIZE_MAX; ///< i to corrupt (if seen)
  double corrupt_factor = 1.0;

  void on_projection_coefficient(const krylov::ArnoldiContext&, std::size_t i,
                                 std::size_t mgs_steps, double& h) override {
    seen.push_back({i, mgs_steps, h});
    if (i == corrupt_index) h *= corrupt_factor;
  }
};

std::vector<la::Vector> standard_basis(std::size_t n, std::size_t k) {
  std::vector<la::Vector> q;
  for (std::size_t i = 0; i < k; ++i) q.push_back(la::unit(n, i));
  return q;
}

} // namespace

TEST(Orthogonalize, NamesAreStable) {
  EXPECT_STREQ(krylov::to_string(krylov::Orthogonalization::MGS), "mgs");
  EXPECT_STREQ(krylov::to_string(krylov::Orthogonalization::CGS), "cgs");
  EXPECT_STREQ(krylov::to_string(krylov::Orthogonalization::CGS2), "cgs2");
}

TEST(Orthogonalize, MgsAgainstStandardBasisExtractsCoefficients) {
  const auto q = standard_basis(4, 2);
  la::Vector v{3.0, -2.0, 5.0, 1.0};
  std::vector<double> h(2, 0.0);
  krylov::orthogonalize(krylov::Orthogonalization::MGS, q, 2, v, h, nullptr,
                        {});
  EXPECT_DOUBLE_EQ(h[0], 3.0);
  EXPECT_DOUBLE_EQ(h[1], -2.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
}

TEST(Orthogonalize, AllVariantsProduceOrthogonalResult) {
  // Non-orthogonal input direction vs an orthonormal basis: v must come
  // out orthogonal to every basis vector for each variant.
  const std::size_t n = 20;
  std::vector<la::Vector> q;
  // Build a small orthonormal basis by Gram-Schmidt on fixed vectors.
  q.push_back(la::Vector(n));
  for (std::size_t i = 0; i < n; ++i) q[0][i] = 1.0;
  la::scal(1.0 / la::nrm2(q[0]), q[0]);
  q.push_back(la::Vector(n));
  for (std::size_t i = 0; i < n; ++i) q[1][i] = static_cast<double>(i);
  const double proj = la::dot(q[0], q[1]);
  la::axpy(-proj, q[0], q[1]);
  la::scal(1.0 / la::nrm2(q[1]), q[1]);

  for (const auto kind :
       {krylov::Orthogonalization::MGS, krylov::Orthogonalization::CGS,
        krylov::Orthogonalization::CGS2}) {
    la::Vector v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = std::sin(static_cast<double>(i) + 1.0);
    }
    std::vector<double> h(2, 0.0);
    krylov::orthogonalize(kind, q, 2, v, h, nullptr, {});
    EXPECT_NEAR(la::dot(q[0], v), 0.0, 1e-12) << krylov::to_string(kind);
    EXPECT_NEAR(la::dot(q[1], v), 0.0, 1e-12) << krylov::to_string(kind);
  }
}

TEST(Orthogonalize, HookSeesEveryFirstPassCoefficient) {
  const auto q = standard_basis(5, 3);
  la::Vector v{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> h(3, 0.0);
  RecordingHook hook;
  krylov::orthogonalize(krylov::Orthogonalization::MGS, q, 3, v, h, &hook, {});
  ASSERT_EQ(hook.seen.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(hook.seen[i].i, i);
    EXPECT_EQ(hook.seen[i].mgs_steps, 3u);
  }
}

TEST(Orthogonalize, HookMutationIsAppliedMgs) {
  // Corrupting h[0] in MGS must taint the vector update: v keeps a
  // component along q_0 proportional to the (un)removed amount.
  const auto q = standard_basis(3, 2);
  la::Vector v{4.0, 2.0, 1.0};
  std::vector<double> h(2, 0.0);
  RecordingHook hook;
  hook.corrupt_index = 0;
  hook.corrupt_factor = 0.5; // removes half of the q_0 component
  krylov::orthogonalize(krylov::Orthogonalization::MGS, q, 2, v, h, &hook, {});
  EXPECT_DOUBLE_EQ(h[0], 2.0); // the stored (faulty) coefficient
  EXPECT_DOUBLE_EQ(v[0], 2.0); // residual q_0 component not removed
}

TEST(Orthogonalize, Cgs2SecondPassRepairsCorruption) {
  // With CGS2, a fault in the first pass is (mostly) corrected by the
  // silent second pass -- the final v is orthogonal even though h is
  // tainted.  This distinguishes the variants' fault sensitivity.
  const auto q = standard_basis(3, 2);
  la::Vector v{4.0, 2.0, 1.0};
  std::vector<double> h(2, 0.0);
  RecordingHook hook;
  hook.corrupt_index = 0;
  hook.corrupt_factor = 0.5;
  krylov::orthogonalize(krylov::Orthogonalization::CGS2, q, 2, v, h, &hook,
                        {});
  EXPECT_NEAR(v[0], 0.0, 1e-14); // repaired
  EXPECT_DOUBLE_EQ(h[0], 4.0);   // total removed ends up correct: 2 + 2
}

TEST(Orthogonalize, MgsTaintPropagatesToLaterCoefficients) {
  // The paper's worst case: corrupting the *first* MGS coefficient changes
  // the vector that later dot products see.  Use a non-orthogonal pair of
  // basis directions... they must be orthonormal for the invariant, so
  // instead check on a basis where q_1 overlaps the q_0 direction removed:
  // q_0 = e_0, q_1 = (e_0 + e_1)/sqrt(2).
  std::vector<la::Vector> q;
  q.push_back(la::unit(3, 0));
  la::Vector q1{1.0, 1.0, 0.0};
  la::scal(1.0 / la::nrm2(q1), q1);
  q.push_back(q1);

  la::Vector v{2.0, 2.0, 0.0};
  std::vector<double> h_clean(2, 0.0);
  {
    la::Vector vc = v;
    krylov::orthogonalize(krylov::Orthogonalization::MGS, q, 2, vc, h_clean,
                          nullptr, {});
  }
  std::vector<double> h_faulty(2, 0.0);
  RecordingHook hook;
  hook.corrupt_index = 0;
  hook.corrupt_factor = 100.0;
  la::Vector vf = v;
  krylov::orthogonalize(krylov::Orthogonalization::MGS, q, 2, vf, h_faulty,
                        &hook, {});
  EXPECT_NE(h_faulty[1], h_clean[1]); // taint reached the second step
}

TEST(Orthogonalize, SpanSizeValidation) {
  const auto q = standard_basis(3, 2);
  la::Vector v(3);
  std::vector<double> h(1, 0.0); // too small for k = 2
  EXPECT_THROW(krylov::orthogonalize(krylov::Orthogonalization::MGS, q, 2, v,
                                     h, nullptr, {}),
               std::invalid_argument);
}

TEST(Orthogonalize, CgsAndMgsAgreeOnOrthonormalBasis) {
  // Against an exactly orthonormal basis, CGS and MGS compute identical
  // coefficients in exact arithmetic.
  const auto q = standard_basis(6, 4);
  la::Vector v{1.0, -2.0, 3.0, -4.0, 5.0, -6.0};
  std::vector<double> h_mgs(4, 0.0), h_cgs(4, 0.0);
  la::Vector v1 = v, v2 = v;
  krylov::orthogonalize(krylov::Orthogonalization::MGS, q, 4, v1, h_mgs,
                        nullptr, {});
  krylov::orthogonalize(krylov::Orthogonalization::CGS, q, 4, v2, h_cgs,
                        nullptr, {});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(h_mgs[i], h_cgs[i]);
  }
}
