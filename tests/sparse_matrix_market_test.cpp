#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sparse/matrix_market.hpp"

namespace sparse = sdcgmres::sparse;

TEST(MatrixMarket, ReadsGeneralRealMatrix) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "2 2 3\n"
      "1 1 1.0\n"
      "1 2 2.0\n"
      "2 2 3.0\n");
  const auto A = sparse::read_matrix_market(in);
  EXPECT_EQ(A.rows(), 2u);
  EXPECT_EQ(A.cols(), 2u);
  EXPECT_EQ(A.nnz(), 3u);
  EXPECT_DOUBLE_EQ(A.at(0, 1), 2.0);
}

TEST(MatrixMarket, ExpandsSymmetricStorage) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 4.0\n"
      "2 1 -1.0\n");
  const auto A = sparse::read_matrix_market(in);
  EXPECT_EQ(A.nnz(), 3u); // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(A.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 0), -1.0);
}

TEST(MatrixMarket, ExpandsSkewSymmetricWithSignFlip) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 5.0\n");
  const auto A = sparse::read_matrix_market(in);
  EXPECT_DOUBLE_EQ(A.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(A.at(0, 1), -5.0);
}

TEST(MatrixMarket, PatternEntriesDefaultToOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const auto A = sparse::read_matrix_market(in);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(A.at(1, 1), 1.0);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("not a banner\n1 1 0\n");
  EXPECT_THROW((void)sparse::read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsComplexField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n"
      "1 1 1.0 0.0\n");
  EXPECT_THROW((void)sparse::read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW((void)sparse::read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 3\n"
      "1 1 1.0\n");
  EXPECT_THROW((void)sparse::read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfRangeIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW((void)sparse::read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  sparse::CooMatrix coo(3, 2);
  coo.add(0, 0, 1.25);
  coo.add(2, 1, -7.5e-3);
  const sparse::CsrMatrix A{std::move(coo)};
  std::stringstream buffer;
  sparse::write_matrix_market(buffer, A);
  const auto B = sparse::read_matrix_market(buffer);
  EXPECT_EQ(B.rows(), A.rows());
  EXPECT_EQ(B.cols(), A.cols());
  EXPECT_EQ(B.nnz(), A.nnz());
  EXPECT_DOUBLE_EQ(B.at(0, 0), 1.25);
  EXPECT_DOUBLE_EQ(B.at(2, 1), -7.5e-3);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW((void)sparse::read_matrix_market_file("/nonexistent/path.mtx"),
               std::runtime_error);
}

TEST(MatrixMarket, ErrorsCarryTheLineNumber) {
  // A malformed entry reports the 1-based line it sits on (comments and
  // blank lines count), plus the offending text.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "not an entry\n");
  try {
    (void)sparse::read_matrix_market(in);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("not an entry"), std::string::npos) << what;
  }
}

TEST(MatrixMarket, OutOfRangeIndexNamesTheLine) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  try {
    (void)sparse::read_matrix_market(in);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("(3, 1)"), std::string::npos) << what;
  }
}

TEST(MatrixMarket, MissingFileNamesPathAndReason) {
  try {
    (void)sparse::read_matrix_market_file("/nonexistent/path.mtx");
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("/nonexistent/path.mtx"), std::string::npos) << what;
    EXPECT_NE(what.find("cannot open"), std::string::npos) << what;
  }
}

TEST(MatrixMarket, FileParseErrorsNameThePath) {
  const std::string path = "registry_test_bad.mtx";
  std::ofstream(path) << "%%MatrixMarket matrix coordinate real general\n"
                         "garbage size line\n";
  try {
    (void)sparse::read_matrix_market_file(path);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("malformed size line"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}
