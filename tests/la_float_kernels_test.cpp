/// \file la_float_kernels_test.cpp
/// \brief Float instantiations of the BLAS-1/2 span kernels (the
/// mixed-precision inner plane): each kernel against a plain reference
/// loop in float, plus the structural properties the double tests pin
/// down (fused dot_axpy == dot + axpy in serial order, hook protocol,
/// gemv_t == per-column dots).

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/krylov_basis.hpp"

namespace la = sdcgmres::la;

namespace {

std::vector<float> test_vec(std::size_t n, float phase) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.7f * static_cast<float>(i + 1) + phase) +
           0.25f * phase;
  }
  return v;
}

} // namespace

TEST(LaFloatKernels, DotMatchesSequentialReference) {
  const auto x = test_vec(257, 0.3f);
  const auto y = test_vec(257, 1.1f);
  float ref = 0.0f;
  for (std::size_t i = 0; i < x.size(); ++i) ref += x[i] * y[i];
  EXPECT_EQ(la::dot(std::span<const float>(x), std::span<const float>(y)),
            ref);
}

TEST(LaFloatKernels, Nrm2IsSqrtOfSelfDot) {
  const auto x = test_vec(100, 0.9f);
  const float d = la::dot(std::span<const float>(x), std::span<const float>(x));
  EXPECT_FLOAT_EQ(la::nrm2(std::span<const float>(x)), std::sqrt(d));
}

TEST(LaFloatKernels, AxpyScalCopyWaxpby) {
  const auto x = test_vec(64, 0.2f);
  auto y = test_vec(64, 2.5f);
  auto y_ref = y;
  la::axpy(1.5f, std::span<const float>(x), std::span<float>(y));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y[i], y_ref[i] + 1.5f * x[i]) << i;
  }

  la::scal(0.5f, std::span<float>(y));
  std::vector<float> z(64);
  la::copy(std::span<const float>(y), std::span<float>(z));
  EXPECT_EQ(z, y);

  std::vector<float> w(64);
  la::waxpby(2.0f, std::span<const float>(x), -1.0f,
             std::span<const float>(y), std::span<float>(w));
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w[i], 2.0f * x[i] + -1.0f * y[i]) << i;
  }
}

TEST(LaFloatKernels, FiniteChecks) {
  auto x = test_vec(16, 0.4f);
  EXPECT_TRUE(la::all_finite(std::span<const float>(x)));
  EXPECT_EQ(la::count_nonfinite(std::span<const float>(x)), 0u);
  x[3] = std::numeric_limits<float>::quiet_NaN();
  x[9] = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(la::all_finite(std::span<const float>(x)));
  EXPECT_EQ(la::count_nonfinite(std::span<const float>(x)), 2u);
}

TEST(LaFloatKernels, DotAxpyMatchesUnfusedSequenceInSerial) {
  // Below the parallel threshold the fused MGS step must be bitwise
  // identical to dot() followed by axpy(-h, ...), same as the double
  // kernel's contract.
  const auto x = test_vec(128, 0.6f);
  auto y = test_vec(128, 1.9f);
  auto y_ref = y;
  const float h_ref =
      la::dot(std::span<const float>(x), std::span<const float>(y_ref));
  la::axpy(-h_ref, std::span<const float>(x), std::span<float>(y_ref));

  const float h = la::dot_axpy(std::span<const float>(x), std::span<float>(y));
  EXPECT_EQ(h, h_ref);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_ref[i]) << i;
}

TEST(LaFloatKernels, DotAxpyHookObservesAndMutatesCoefficient) {
  const auto x = test_vec(32, 0.8f);
  auto y = test_vec(32, 1.2f);
  auto y_ref = y;
  const float h_clean =
      la::dot(std::span<const float>(x), std::span<const float>(y));

  float seen = 0.0f;
  const float h = la::dot_axpy(
      std::span<const float>(x), std::span<float>(y), [&](float& c) {
        seen = c;
        c = 2.0f * c; // the injection site: mutate before application
      });
  EXPECT_EQ(seen, h_clean);
  EXPECT_EQ(h, 2.0f * h_clean);
  la::axpy(-h, std::span<const float>(x), std::span<float>(y_ref));
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_ref[i]) << i;
}

TEST(LaFloatKernels, GemvTMatchesPerColumnDots) {
  // Basis with 5 columns of length 200; gemv_t must produce each y[j] in
  // sequential dot order (the CGS fusion contract of the double kernel).
  const std::size_t n = 200, cols = 5;
  la::KrylovBasisT<float> q(n, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    std::span<float> col = q.append();
    const auto v = test_vec(n, 0.5f * static_cast<float>(c + 1));
    for (std::size_t i = 0; i < n; ++i) col[i] = v[i];
  }
  const auto x = test_vec(n, 3.1f);
  std::vector<float> y(cols, 0.0f);
  la::gemv_t(1.0f, q.view(), std::span<const float>(x), 0.0f,
             std::span<float>(y));
  for (std::size_t c = 0; c < cols; ++c) {
    EXPECT_EQ(y[c], la::dot(q.col(c), std::span<const float>(x))) << c;
  }
}

TEST(LaFloatKernels, GemvMatchesPerColumnAxpys) {
  const std::size_t n = 150, cols = 6;
  la::KrylovBasisT<float> q(n, cols);
  for (std::size_t c = 0; c < cols; ++c) {
    std::span<float> col = q.append();
    const auto v = test_vec(n, 0.3f * static_cast<float>(c + 2));
    for (std::size_t i = 0; i < n; ++i) col[i] = v[i];
  }
  const auto coef = test_vec(cols, 1.7f);
  std::vector<float> y(n, 0.0f);
  la::gemv(1.0f, q.view(), std::span<const float>(coef), 0.0f,
           std::span<float>(y));

  std::vector<float> ref(n, 0.0f);
  // Reference accumulates with the kernel's 4-wide column blocking to a
  // tolerance; exact order differs, so compare to float roundoff.
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t i = 0; i < n; ++i) ref[i] += coef[c] * q.col(c)[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y[i], ref[i], 1e-4f * std::abs(ref[i]) + 1e-5f) << i;
  }
}
