#include <gtest/gtest.h>

#include <stdexcept>

#include "la/vector.hpp"

namespace la = sdcgmres::la;

TEST(Vector, DefaultConstructedIsEmpty) {
  la::Vector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(Vector, SizingConstructorZeroInitializes) {
  la::Vector v(5);
  ASSERT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], 0.0);
  }
}

TEST(Vector, FillConstructor) {
  la::Vector v(4, 2.5);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], 2.5);
  }
}

TEST(Vector, InitializerList) {
  la::Vector v{1.0, -2.0, 3.0};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], -2.0);
  EXPECT_EQ(v[2], 3.0);
}

TEST(Vector, ElementAssignment) {
  la::Vector v(3);
  v[1] = 7.0;
  EXPECT_EQ(v[1], 7.0);
}

TEST(Vector, ResizePreservesAndZeroFills) {
  la::Vector v{1.0, 2.0};
  v.resize(4);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1.0);
  EXPECT_EQ(v[1], 2.0);
  EXPECT_EQ(v[2], 0.0);
  EXPECT_EQ(v[3], 0.0);
}

TEST(Vector, FillOverwritesAll) {
  la::Vector v{1.0, 2.0, 3.0};
  v.fill(-1.0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], -1.0);
  }
}

TEST(Vector, SpanSeesStorage) {
  la::Vector v{1.0, 2.0};
  auto s = v.span();
  s[0] = 9.0;
  EXPECT_EQ(v[0], 9.0);
}

TEST(Vector, EqualityIsElementWise) {
  la::Vector a{1.0, 2.0};
  la::Vector b{1.0, 2.0};
  la::Vector c{1.0, 2.5};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Vector, RangeBasedIteration) {
  la::Vector v{1.0, 2.0, 3.0};
  double sum = 0.0;
  for (const double x : v) sum += x;
  EXPECT_EQ(sum, 6.0);
}

TEST(VectorFactories, Zeros) {
  const la::Vector z = la::zeros(3);
  EXPECT_EQ(z, la::Vector(3));
}

TEST(VectorFactories, Ones) {
  const la::Vector o = la::ones(3);
  for (const double x : o) EXPECT_EQ(x, 1.0);
}

TEST(VectorFactories, UnitVector) {
  const la::Vector e = la::unit(4, 2);
  EXPECT_EQ(e[0], 0.0);
  EXPECT_EQ(e[1], 0.0);
  EXPECT_EQ(e[2], 1.0);
  EXPECT_EQ(e[3], 0.0);
}

TEST(VectorFactories, UnitVectorOutOfRangeThrows) {
  EXPECT_THROW((void)la::unit(3, 3), std::out_of_range);
}

TEST(VectorFactories, IotaWithStep) {
  const la::Vector v = la::iota(3, 0.5);
  EXPECT_EQ(v[0], 0.0);
  EXPECT_EQ(v[1], 0.5);
  EXPECT_EQ(v[2], 1.0);
}
