#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/poisson.hpp"
#include "sparse/norms.hpp"

namespace sparse = sdcgmres::sparse;
namespace gen = sdcgmres::gen;

namespace {

sparse::CsrMatrix diagonal(std::initializer_list<double> values) {
  const std::size_t n = values.size();
  sparse::CooMatrix coo(n, n);
  std::size_t i = 0;
  for (const double v : values) {
    coo.add(i, i, v);
    ++i;
  }
  return sparse::CsrMatrix(std::move(coo));
}

} // namespace

TEST(Norms, TwoNormOfDiagonalIsLargestEntry) {
  const auto A = diagonal({1.0, -4.0, 2.0});
  const auto est = sparse::estimate_two_norm(A);
  EXPECT_TRUE(est.converged);
  EXPECT_NEAR(est.value, 4.0, 1e-8);
}

TEST(Norms, TwoNormOfPoisson1dMatchesAnalyticEigenvalue) {
  // 1-D Laplacian eigenvalues: 2 - 2 cos(k*pi/(n+1)); max ~ 4 for large n.
  const std::size_t n = 50;
  const auto A = gen::poisson1d(n);
  const double analytic =
      2.0 - 2.0 * std::cos(static_cast<double>(n) * M_PI /
                           static_cast<double>(n + 1));
  const auto est = sparse::estimate_two_norm(A, 2000, 1e-12);
  EXPECT_NEAR(est.value, analytic, 1e-6);
}

TEST(Norms, TwoNormOfPoisson2dApproachesEight) {
  const auto A = gen::poisson2d(30);
  const auto est = sparse::estimate_two_norm(A, 3000, 1e-12);
  EXPECT_GT(est.value, 7.8);
  EXPECT_LT(est.value, 8.0); // the paper's Table I reports ||A||_2 = 8
}

TEST(Norms, TwoNormNeverExceedsFrobenius) {
  const auto A = gen::poisson2d(12);
  const auto est = sparse::estimate_two_norm(A);
  EXPECT_LE(est.value, A.frobenius_norm() * (1.0 + 1e-12));
}

TEST(Norms, EmptyMatrixHasZeroNorm) {
  const sparse::CsrMatrix A;
  const auto est = sparse::estimate_two_norm(A);
  EXPECT_EQ(est.value, 0.0);
  EXPECT_TRUE(est.converged);
}

TEST(Norms, SmallestSingularValueOfDiagonal) {
  const auto A = diagonal({1.0, 0.25, 8.0});
  const auto est = sparse::estimate_smallest_singular_value(A);
  EXPECT_NEAR(est.value, 0.25, 1e-6);
}

TEST(Norms, ConditionNumberOfDiagonal) {
  const auto A = diagonal({10.0, 1.0, 0.1});
  const double cond = sparse::estimate_condition_number(A);
  EXPECT_NEAR(cond, 100.0, 1.0);
}

TEST(Norms, ConditionNumberOfPoisson1dMatchesAnalytic) {
  const std::size_t n = 30;
  const auto A = gen::poisson1d(n);
  const double lam = [](std::size_t k, std::size_t n_) {
    return 2.0 - 2.0 * std::cos(static_cast<double>(k) * M_PI /
                                static_cast<double>(n_ + 1));
  }(1, n);
  const double lam_max =
      2.0 - 2.0 * std::cos(static_cast<double>(n) * M_PI /
                           static_cast<double>(n + 1));
  const double analytic = lam_max / lam;
  const double cond = sparse::estimate_condition_number(A);
  EXPECT_NEAR(cond / analytic, 1.0, 0.05);
}

TEST(Norms, MinColumnNormOfDiagonalIsSmallestEntry) {
  const auto A = diagonal({3.0, 0.5, 2.0});
  EXPECT_DOUBLE_EQ(sparse::min_column_norm(A), 0.5);
}

TEST(Norms, MinColumnNormBoundsSigmaMinFromAbove) {
  // sigma_min <= min_j ||A e_j||, so sigma_max / min_column_norm is a
  // rigorous lower bound on the condition number.
  const auto A = gen::poisson1d(20);
  const auto smin = sparse::estimate_smallest_singular_value(A);
  EXPECT_LE(smin.value, sparse::min_column_norm(A) * (1.0 + 1e-10));
}

TEST(Norms, OneNormIsMaxColumnSum) {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 0, -3.0);
  coo.add(0, 1, 2.0);
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_DOUBLE_EQ(sparse::one_norm(A), 4.0);
}

TEST(Norms, InfNormIsMaxRowSum) {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, -3.0);
  coo.add(1, 1, 2.0);
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_DOUBLE_EQ(sparse::inf_norm(A), 4.0);
}

TEST(Norms, SqrtOneInfBoundsSigmaMax) {
  // sigma_max <= sqrt(||A||_1 ||A||_inf) for any A (Hoelder).
  for (const unsigned seed : {1u, 2u, 3u}) {
    const auto A = gen::poisson2d(6 + seed);
    const double sigma = sparse::estimate_two_norm(A).value;
    EXPECT_LE(sigma, sparse::sqrt_one_inf_bound(A) * (1.0 + 1e-12));
  }
}

TEST(Norms, SqrtOneInfIsExactForPoisson) {
  // For the Poisson matrix ||A||_1 = ||A||_inf = 8, so the bound is 8 --
  // equal to the paper's Table I value of ||A||_2 (at the paper's scale
  // it is 56x tighter than ||A||_F = 446; the gap grows like sqrt(n)).
  const auto A = gen::poisson2d(30);
  EXPECT_DOUBLE_EQ(sparse::sqrt_one_inf_bound(A), 8.0);
  EXPECT_LT(sparse::sqrt_one_inf_bound(A), A.frobenius_norm() / 10.0);
}

TEST(Norms, GershgorinBoundsSpectrumOfSymmetricMatrix) {
  const auto A = gen::poisson2d(10);
  const double sigma = sparse::estimate_two_norm(A).value;
  EXPECT_LE(sigma, sparse::gershgorin_bound(A) * (1.0 + 1e-12));
  EXPECT_DOUBLE_EQ(sparse::gershgorin_bound(A), 8.0);
}

TEST(Norms, CheapestDetectorBoundIsValidAndMinimal) {
  const auto A = gen::poisson2d(12);
  const double bound = sparse::cheapest_detector_bound(A);
  EXPECT_DOUBLE_EQ(bound, std::min(A.frobenius_norm(),
                                   sparse::sqrt_one_inf_bound(A)));
  EXPECT_GE(bound, sparse::estimate_two_norm(A).value * (1.0 - 1e-12));
}

TEST(Norms, PoissonNormIdentitiesHold) {
  // For symmetric A: ||A||_1 == ||A||_inf, and ||A||_2 <= both.
  const auto A = gen::poisson2d(8);
  EXPECT_DOUBLE_EQ(sparse::one_norm(A), sparse::inf_norm(A));
  EXPECT_LE(sparse::estimate_two_norm(A).value,
            sparse::one_norm(A) * (1.0 + 1e-12));
}
