/// \file solver_registry_test.cpp
/// \brief Registry contract: every registered name round-trips through
/// its factory, unknown names fail loudly listing the alternatives, and
/// inline `name:arg` arguments parse.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "gen/poisson.hpp"
#include "krylov/operator.hpp"
#include "la/blas1.hpp"
#include "solver/registry.hpp"
#include "sparse/matrix_market.hpp"

namespace solver = sdcgmres::solver;
namespace experiment = sdcgmres::experiment;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace sdc = sdcgmres::sdc;
namespace la = sdcgmres::la;
using sdcgmres::sparse::CsrMatrix;

namespace {

const experiment::ScenarioSpec kEmptySpec;

/// Small spec so matrix construction stays fast for every key.
experiment::ScenarioSpec small_spec() {
  return experiment::ScenarioSpec::parse("n=6 nodes=64");
}

/// Expect that calling \p fn throws std::invalid_argument whose message
/// contains every string in \p needles.
template <typename Fn>
void expect_lists(Fn&& fn, std::initializer_list<const char*> needles) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const char* needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "message '" << what << "' does not mention '" << needle << "'";
    }
  }
}

} // namespace

TEST(MatrixRegistry, EveryKeyRoundTrips) {
  const auto spec = small_spec();
  for (const std::string& key : solver::matrix_registry().keys()) {
    if (key == "mtx") continue; // needs a file; covered below
    SCOPED_TRACE(key);
    const CsrMatrix A = solver::matrix_registry().make(key, spec);
    EXPECT_GT(A.rows(), 0u);
    EXPECT_GT(A.nnz(), 0u);
    EXPECT_EQ(A.rows(), A.cols());
  }
}

TEST(MatrixRegistry, InlineArgOverridesSpec) {
  const auto spec = small_spec(); // n=6
  const CsrMatrix by_spec = solver::matrix_registry().make("poisson", spec);
  EXPECT_EQ(by_spec.rows(), 36u);
  const CsrMatrix by_arg = solver::matrix_registry().make("poisson:9", spec);
  EXPECT_EQ(by_arg.rows(), 81u);
}

TEST(MatrixRegistry, MtxReadsAFile) {
  const CsrMatrix original = gen::poisson2d(4);
  const std::string path = "registry_test_tmp.mtx";
  sdcgmres::sparse::write_matrix_market_file(path, original);
  const CsrMatrix loaded =
      solver::matrix_registry().make("mtx:" + path, kEmptySpec);
  EXPECT_EQ(loaded.rows(), original.rows());
  EXPECT_EQ(loaded.nnz(), original.nnz());
  std::remove(path.c_str());

  expect_lists(
      [] { (void)solver::matrix_registry().make("mtx", kEmptySpec); },
      {"mtx", "path"});
}

TEST(MatrixRegistry, UnknownNameListsAvailableKeys) {
  expect_lists(
      [] { (void)solver::matrix_registry().make("laplace", kEmptySpec); },
      {"unknown matrix 'laplace'", "poisson", "circuit", "convdiff", "mtx"});
}

TEST(PreconditionerRegistry, EveryKeyRoundTrips) {
  const CsrMatrix A = gen::poisson2d(6);
  const la::Vector r = la::ones(A.rows());
  la::Vector z(A.rows());
  for (const std::string& key : solver::preconditioner_registry().keys()) {
    SCOPED_TRACE(key);
    const auto p = solver::preconditioner_registry().make(key, A, kEmptySpec);
    if (key == "none") {
      EXPECT_EQ(p, nullptr);
      continue;
    }
    ASSERT_NE(p, nullptr);
    p->apply(r, z);
    for (std::size_t i = 0; i < z.size(); ++i) {
      EXPECT_TRUE(std::isfinite(z[i]));
    }
  }
}

TEST(PreconditionerRegistry, UnknownNameListsAvailableKeys) {
  const CsrMatrix A = gen::poisson2d(4);
  expect_lists(
      [&] {
        (void)solver::preconditioner_registry().make("ssor", A, kEmptySpec);
      },
      {"unknown preconditioner 'ssor'", "jacobi", "ilu0", "neumann", "none"});
}

TEST(FaultModelRegistry, EveryKeyRoundTripsWithPaperSemantics) {
  for (const std::string& key : solver::fault_model_registry().keys()) {
    SCOPED_TRACE(key);
    (void)solver::fault_model_registry().make(key, kEmptySpec);
  }
  const auto& reg = solver::fault_model_registry();
  EXPECT_EQ(reg.make("class1", kEmptySpec).apply(2.0), 2.0 * 1e150);
  EXPECT_EQ(reg.make("class3", kEmptySpec).apply(2.0), 2.0 * 1e-300);
  EXPECT_EQ(reg.make("scale:0.5", kEmptySpec).apply(8.0), 4.0);
  EXPECT_EQ(reg.make("set:3.25", kEmptySpec).apply(8.0), 3.25);
  EXPECT_EQ(reg.make("add:1.5", kEmptySpec).apply(8.0), 9.5);
  EXPECT_TRUE(std::isnan(reg.make("set", kEmptySpec).apply(8.0)));
  EXPECT_EQ(reg.make("none", kEmptySpec).apply(8.0), 8.0);
  // bitflip:63 flips the sign bit of binary64.
  EXPECT_EQ(reg.make("bitflip:63", kEmptySpec).apply(8.0), -8.0);

  expect_lists([&] { (void)reg.make("scale:huge", kEmptySpec); },
               {"scale", "not a number"});
}

TEST(FaultModelRegistry, UnknownNameListsAvailableKeys) {
  expect_lists(
      [] { (void)solver::fault_model_registry().make("zap", kEmptySpec); },
      {"unknown fault model 'zap'", "class1", "scale", "bitflip"});
}

TEST(DetectorRegistry, RoundTripAndResponses) {
  const auto& reg = solver::detector_registry();
  EXPECT_EQ(reg.make("none", 10.0, kEmptySpec), nullptr);

  const auto abort_det = reg.make("bound", 10.0, kEmptySpec);
  ASSERT_NE(abort_det, nullptr);
  EXPECT_EQ(abort_det->bound(), 10.0);

  const auto record_det = reg.make("bound:record", 10.0, kEmptySpec);
  ASSERT_NE(record_det, nullptr);

  const auto spec = experiment::ScenarioSpec::parse("bound=42.5");
  EXPECT_EQ(reg.make("bound", 10.0, spec)->bound(), 42.5);

  // The inline response resolves through the recovery-mode registry, so an
  // unknown name lists every registered mode.
  expect_lists([&] { (void)reg.make("bound:panic", 10.0, kEmptySpec); },
               {"recovery mode", "abort", "record", "retry_reliable",
                "restart_outer"});
  expect_lists([&] { (void)reg.make("bound", -1.0, kEmptySpec); },
               {"positive"});
}

TEST(DetectorRegistry, UnknownNameListsAvailableKeys) {
  expect_lists(
      [] { (void)solver::detector_registry().make("abft", 1.0, kEmptySpec); },
      {"unknown detector 'abft'", "bound", "none"});
}

TEST(RecoveryRegistry, EveryKeyMapsToItsResponse) {
  const auto& reg = solver::recovery_registry();
  EXPECT_EQ(reg.make("none", kEmptySpec), sdc::DetectorResponse::RecordOnly);
  EXPECT_EQ(reg.make("record", kEmptySpec), sdc::DetectorResponse::RecordOnly);
  EXPECT_EQ(reg.make("abort", kEmptySpec), sdc::DetectorResponse::AbortSolve);
  EXPECT_EQ(reg.make("retry_reliable", kEmptySpec),
            sdc::DetectorResponse::RetryReliable);
  EXPECT_EQ(reg.make("restart_outer", kEmptySpec),
            sdc::DetectorResponse::RestartOuter);
  expect_lists([&] { (void)reg.make("bogus", kEmptySpec); },
               {"unknown recovery mode 'bogus'", "abort", "retry_reliable"});
}

TEST(SolverRegistry, EveryKeyRoundTripsAndSolves) {
  // SPD problem so even the CG-family solvers converge.
  const CsrMatrix A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  solver::Options opts;
  opts.inner_iters = 5;

  for (const std::string& key : solver::solver_registry().keys()) {
    SCOPED_TRACE(key);
    const auto s = solver::solver_registry().make(
        key, solver::SolverContext{op, opts, nullptr});
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), key);
    EXPECT_EQ(s->dimension(), A.rows());
    solver::SolveReport rep;
    (void)s->solve(b, &rep);
    EXPECT_TRUE(rep.converged()) << solver::to_string(rep.status);
  }
}

TEST(Registry, StrayInlineArgumentRejected) {
  const CsrMatrix A = gen::poisson2d(4);
  const krylov::CsrOperator op(A);
  expect_lists(
      [&] {
        (void)solver::solver_registry().make(
            "gmres:50", solver::SolverContext{op, solver::Options{}, nullptr});
      },
      {"takes no inline", "50"});
  expect_lists(
      [&] {
        (void)solver::preconditioner_registry().make("jacobi:3", A,
                                                     kEmptySpec);
      },
      {"takes no inline"});
  expect_lists(
      [] { (void)solver::fault_model_registry().make("class1:2", kEmptySpec); },
      {"takes no inline"});
}

TEST(SolverRegistry, UnknownNameListsAvailableKeys) {
  const CsrMatrix A = gen::poisson2d(4);
  const krylov::CsrOperator op(A);
  expect_lists(
      [&] {
        (void)solver::solver_registry().make(
            "bicgstab", solver::SolverContext{op, solver::Options{}, nullptr});
      },
      {"unknown solver 'bicgstab'", "gmres", "ft_gmres", "cg", "fcg"});
}

TEST(Registry, UserExtensionIsVisible) {
  auto& reg = solver::fault_model_registry();
  reg.add("sticky-zero", [](const std::string&, const experiment::ScenarioSpec&) {
    return sdc::FaultModel::set_value(0.0);
  });
  EXPECT_TRUE(reg.contains("sticky-zero"));
  EXPECT_EQ(reg.make("sticky-zero", kEmptySpec).apply(7.0), 0.0);
}
