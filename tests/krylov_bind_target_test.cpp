#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "krylov/gmres.hpp"
#include "krylov/operator.hpp"
#include "la/block.hpp"
#include "la/blas1.hpp"
#include "la/vector.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

// Drive a GmresEngine through the canonical loop, routing every operator
// product through an EXTERNAL staging column when `bind` is set -- the
// lockstep batch drivers' zero-copy path (bind_product_target).  The
// unbound run is the reference: the engine must read the bound column
// exactly where it reads its own scratch, bitwise.
krylov::GmresStats drive(const sdcgmres::sparse::CsrMatrix& A,
                         const la::Vector& b, const krylov::GmresOptions& opts,
                         bool bind, la::Vector& x_out) {
  const krylov::CsrOperator op(A);
  krylov::KrylovWorkspace ws;
  la::Vector x(A.rows());
  krylov::GmresEngine engine(op, b.span(), x.span(), opts, nullptr, 0, ws,
                             nullptr);

  la::BlockWorkspace staging;
  staging.reserve(A.rows(), 1);
  const std::span<double> stage_col = staging.view(1).col(0);

  while (!engine.finished()) {
    if (bind) engine.bind_product_target(stage_col);
    if (engine.awaiting_residual()) {
      op.apply(engine.residual_operand(), engine.residual_target());
      engine.start_cycle();
    } else {
      engine.begin_iteration();
      op.apply(engine.direction(), engine.v_target());
      engine.advance();
    }
    if (bind) engine.unbind_product_target();
  }
  x_out = std::move(x);
  return engine.stats();
}

bool bitwise_equal(const la::Vector& a, const la::Vector& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

} // namespace

TEST(BindProductTarget, BoundRunIsBitwiseIdenticalToUnbound) {
  const auto A = gen::convection_diffusion2d(9, 10.0, -4.0);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 120;
  opts.restart = 20;
  opts.tol = 1e-10;

  la::Vector x_plain, x_bound;
  const auto plain = drive(A, b, opts, /*bind=*/false, x_plain);
  const auto bound = drive(A, b, opts, /*bind=*/true, x_bound);

  EXPECT_EQ(plain.status, bound.status);
  EXPECT_EQ(plain.iterations, bound.iterations);
  EXPECT_EQ(plain.global_syncs, bound.global_syncs);
  EXPECT_EQ(plain.residual_norm, bound.residual_norm);
  EXPECT_TRUE(bitwise_equal(x_plain, x_bound));
}

TEST(BindProductTarget, BoundSStepRunIsBitwiseIdenticalToUnbound) {
  // s-step staging consumes the bound column as the staged power -- the
  // zero-copy seam must hold there too.
  const auto A = gen::poisson2d(9);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 80;
  opts.tol = 1e-10;
  opts.s_step = 4;

  la::Vector x_plain, x_bound;
  const auto plain = drive(A, b, opts, /*bind=*/false, x_plain);
  const auto bound = drive(A, b, opts, /*bind=*/true, x_bound);

  EXPECT_EQ(plain.status, bound.status);
  EXPECT_EQ(plain.iterations, bound.iterations);
  EXPECT_EQ(plain.global_syncs, bound.global_syncs);
  EXPECT_TRUE(bitwise_equal(x_plain, x_bound));
}

TEST(BindProductTarget, UnbindRestoresInternalScratch) {
  // Bind for the first half of the solve only; the engine must fall back
  // to its own scratch seamlessly (values were already consumed from the
  // bound span by the time unbind runs).
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 60;
  opts.tol = 1e-10;

  const krylov::CsrOperator op(A);
  krylov::KrylovWorkspace ws;
  la::Vector x(A.rows());
  krylov::GmresEngine engine(op, b.span(), x.span(), opts, nullptr, 0, ws,
                             nullptr);
  la::BlockWorkspace staging;
  staging.reserve(A.rows(), 1);

  std::size_t step = 0;
  while (!engine.finished()) {
    const bool bind = (step < 10);
    if (bind) engine.bind_product_target(staging.view(1).col(0));
    if (engine.awaiting_residual()) {
      op.apply(engine.residual_operand(), engine.residual_target());
      engine.start_cycle();
    } else {
      engine.begin_iteration();
      op.apply(engine.direction(), engine.v_target());
      engine.advance();
    }
    if (bind) engine.unbind_product_target();
    ++step;
  }

  la::Vector x_ref;
  const auto ref = drive(A, b, opts, /*bind=*/false, x_ref);
  EXPECT_EQ(engine.stats().iterations, ref.iterations);
  EXPECT_EQ(engine.stats().global_syncs, ref.global_syncs);
  EXPECT_TRUE(bitwise_equal(x, x_ref));
}
