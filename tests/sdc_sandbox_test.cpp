#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>

#include "gen/poisson.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/ft_gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/sandbox.hpp"

namespace sdc = sdcgmres::sdc;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

class WellBehavedGuest final : public krylov::FlexiblePreconditioner {
public:
  using krylov::FlexiblePreconditioner::apply;
  void apply(std::span<const double> q, std::size_t,
             std::span<double> z) override {
    la::copy(q, z);
    la::scal(2.0, z);
  }
};

class NaNGuest final : public krylov::FlexiblePreconditioner {
public:
  using krylov::FlexiblePreconditioner::apply;
  void apply(std::span<const double>, std::size_t,
             std::span<double> z) override {
    std::fill(z.begin(), z.end(), std::numeric_limits<double>::quiet_NaN());
  }
};

class CrashingGuest final : public krylov::FlexiblePreconditioner {
public:
  using krylov::FlexiblePreconditioner::apply;
  void apply(std::span<const double>, std::size_t, std::span<double> z) override {
    // Partial write before the crash: the sandbox must erase it.
    if (!z.empty()) z[0] = 1e300;
    throw std::runtime_error("guest crashed");
  }
};

/// A guest that writes only part of its output before returning -- the
/// span-contract analogue of the old wrong-shape failure (the host owns
/// the storage, so a wrong-SIZE output is structurally impossible now;
/// what remains possible is a guest that fails to fill its span).
class PartialWriteGuest final : public krylov::FlexiblePreconditioner {
public:
  using krylov::FlexiblePreconditioner::apply;
  void apply(std::span<const double>, std::size_t,
             std::span<double> z) override {
    if (!z.empty()) z[0] = std::numeric_limits<double>::infinity();
  }
};

} // namespace

TEST(Sandbox, PassesThroughGoodOutput) {
  WellBehavedGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  box.apply(la::Vector{1.0, 2.0}, 0, z);
  EXPECT_EQ(z[0], 2.0);
  EXPECT_EQ(z[1], 4.0);
  EXPECT_EQ(box.stats().invocations, 1u);
  EXPECT_EQ(box.stats().nonfinite_outputs, 0u);
}

TEST(Sandbox, FiltersNonFiniteOutput) {
  NaNGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  const la::Vector q{3.0, 4.0};
  box.apply(q, 0, z);
  EXPECT_EQ(z, q); // identity fallback
  EXPECT_EQ(box.stats().nonfinite_outputs, 1u);
}

TEST(Sandbox, NonFiniteFilterCanBeDisabled) {
  NaNGuest guest;
  sdc::SandboxOptions opts;
  opts.replace_nonfinite = false;
  sdc::Sandbox box(guest, opts);
  la::Vector z;
  box.apply(la::Vector{1.0}, 0, z);
  EXPECT_FALSE(la::all_finite(z));
  EXPECT_EQ(box.stats().nonfinite_outputs, 0u);
}

TEST(Sandbox, ConvertsCrashIntoSoftFault) {
  CrashingGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  const la::Vector q{5.0, 6.0};
  EXPECT_NO_THROW(box.apply(q, 0, z));
  EXPECT_EQ(z, q);
  EXPECT_EQ(box.stats().exceptions, 1u);
}

TEST(Sandbox, CrashPropagatesWhenCatchingDisabled) {
  CrashingGuest guest;
  sdc::SandboxOptions opts;
  opts.catch_exceptions = false;
  sdc::Sandbox box(guest, opts);
  la::Vector z;
  EXPECT_THROW(box.apply(la::Vector{1.0}, 0, z), std::runtime_error);
}

TEST(Sandbox, HostOwnsOutputShapeAndFiltersPartialWrites) {
  // Under the span data plane the host allocates z before the guest runs,
  // so the output shape is host-enforced; a guest that only half-fills its
  // span leaves non-finite-free garbage at worst -- here it leaves an Inf,
  // which the non-finite filter replaces wholesale.
  PartialWriteGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  const la::Vector q{1.0, 2.0, 3.0};
  box.apply(q, 0, z);
  EXPECT_EQ(z.size(), q.size());
  EXPECT_EQ(z, q); // identity fallback after the filter fired
  EXPECT_EQ(box.stats().nonfinite_outputs, 1u);
}

TEST(Sandbox, ResetClearsStats) {
  NaNGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  box.apply(la::Vector{1.0}, 0, z);
  ASSERT_EQ(box.stats().invocations, 1u);
  box.reset();
  EXPECT_EQ(box.stats().invocations, 0u);
  EXPECT_EQ(box.stats().nonfinite_outputs, 0u);
}

TEST(Sandbox, OuterSolverConvergesDespiteCrashingGuest) {
  // The sandbox turns every guest crash into an identity preconditioner
  // application, so FGMRES degenerates to plain GMRES and still converges:
  // the paper's "eventual convergence" promise in its most extreme form.
  const auto A = gen::poisson2d(7);
  const krylov::CsrOperator op(A);
  CrashingGuest guest;
  sdc::Sandbox box(guest);
  krylov::FgmresOptions opts;
  opts.max_outer = 200;
  opts.tol = 1e-8;
  const auto res = krylov::fgmres(op, la::ones(49), la::zeros(49), opts, box);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_EQ(box.stats().exceptions, res.outer_iterations);
}

TEST(Sandbox, WrapsInnerGmresTransparently) {
  // Sandbox around the real inner solver must not change the failure-free
  // iteration counts.
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(64);

  krylov::FtGmresOptions nested_opts;
  const auto direct = krylov::ft_gmres(A, b, nested_opts);

  krylov::InnerGmresPreconditioner inner(op, nested_opts.inner);
  sdc::Sandbox box(inner);
  const auto sandboxed =
      krylov::fgmres(op, b, la::zeros(64), nested_opts.outer, box);

  ASSERT_EQ(direct.status, krylov::SolveStatus::Converged);
  ASSERT_EQ(sandboxed.status, krylov::SolveStatus::Converged);
  EXPECT_EQ(sandboxed.outer_iterations, direct.outer_iterations);
  EXPECT_EQ(box.stats().invocations, sandboxed.outer_iterations);
}
