#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "gen/poisson.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/ft_gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/sandbox.hpp"

namespace sdc = sdcgmres::sdc;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

class WellBehavedGuest final : public krylov::FlexiblePreconditioner {
public:
  void apply(const la::Vector& q, std::size_t, la::Vector& z) override {
    la::copy(q, z);
    la::scal(2.0, z);
  }
};

class NaNGuest final : public krylov::FlexiblePreconditioner {
public:
  void apply(const la::Vector& q, std::size_t, la::Vector& z) override {
    z.resize(q.size());
    z.fill(std::numeric_limits<double>::quiet_NaN());
  }
};

class CrashingGuest final : public krylov::FlexiblePreconditioner {
public:
  void apply(const la::Vector&, std::size_t, la::Vector&) override {
    throw std::runtime_error("guest crashed");
  }
};

class WrongShapeGuest final : public krylov::FlexiblePreconditioner {
public:
  void apply(const la::Vector& q, std::size_t, la::Vector& z) override {
    z.resize(q.size() + 3);
  }
};

} // namespace

TEST(Sandbox, PassesThroughGoodOutput) {
  WellBehavedGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  box.apply(la::Vector{1.0, 2.0}, 0, z);
  EXPECT_EQ(z[0], 2.0);
  EXPECT_EQ(z[1], 4.0);
  EXPECT_EQ(box.stats().invocations, 1u);
  EXPECT_EQ(box.stats().nonfinite_outputs, 0u);
}

TEST(Sandbox, FiltersNonFiniteOutput) {
  NaNGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  const la::Vector q{3.0, 4.0};
  box.apply(q, 0, z);
  EXPECT_EQ(z, q); // identity fallback
  EXPECT_EQ(box.stats().nonfinite_outputs, 1u);
}

TEST(Sandbox, NonFiniteFilterCanBeDisabled) {
  NaNGuest guest;
  sdc::SandboxOptions opts;
  opts.replace_nonfinite = false;
  sdc::Sandbox box(guest, opts);
  la::Vector z;
  box.apply(la::Vector{1.0}, 0, z);
  EXPECT_FALSE(la::all_finite(z));
  EXPECT_EQ(box.stats().nonfinite_outputs, 0u);
}

TEST(Sandbox, ConvertsCrashIntoSoftFault) {
  CrashingGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  const la::Vector q{5.0, 6.0};
  EXPECT_NO_THROW(box.apply(q, 0, z));
  EXPECT_EQ(z, q);
  EXPECT_EQ(box.stats().exceptions, 1u);
}

TEST(Sandbox, CrashPropagatesWhenCatchingDisabled) {
  CrashingGuest guest;
  sdc::SandboxOptions opts;
  opts.catch_exceptions = false;
  sdc::Sandbox box(guest, opts);
  la::Vector z;
  EXPECT_THROW(box.apply(la::Vector{1.0}, 0, z), std::runtime_error);
}

TEST(Sandbox, FixesWrongShapeOutput) {
  WrongShapeGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  const la::Vector q{1.0, 2.0, 3.0};
  box.apply(q, 0, z);
  EXPECT_EQ(z.size(), q.size());
  EXPECT_EQ(box.stats().wrong_shape_outputs, 1u);
}

TEST(Sandbox, ResetClearsStats) {
  NaNGuest guest;
  sdc::Sandbox box(guest);
  la::Vector z;
  box.apply(la::Vector{1.0}, 0, z);
  ASSERT_EQ(box.stats().invocations, 1u);
  box.reset();
  EXPECT_EQ(box.stats().invocations, 0u);
  EXPECT_EQ(box.stats().nonfinite_outputs, 0u);
}

TEST(Sandbox, OuterSolverConvergesDespiteCrashingGuest) {
  // The sandbox turns every guest crash into an identity preconditioner
  // application, so FGMRES degenerates to plain GMRES and still converges:
  // the paper's "eventual convergence" promise in its most extreme form.
  const auto A = gen::poisson2d(7);
  const krylov::CsrOperator op(A);
  CrashingGuest guest;
  sdc::Sandbox box(guest);
  krylov::FgmresOptions opts;
  opts.max_outer = 200;
  opts.tol = 1e-8;
  const auto res = krylov::fgmres(op, la::ones(49), la::zeros(49), opts, box);
  EXPECT_EQ(res.status, krylov::FgmresStatus::Converged);
  EXPECT_EQ(box.stats().exceptions, res.outer_iterations);
}

TEST(Sandbox, WrapsInnerGmresTransparently) {
  // Sandbox around the real inner solver must not change the failure-free
  // iteration counts.
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(64);

  krylov::FtGmresOptions nested_opts;
  const auto direct = krylov::ft_gmres(A, b, nested_opts);

  krylov::InnerGmresPreconditioner inner(op, nested_opts.inner);
  sdc::Sandbox box(inner);
  const auto sandboxed =
      krylov::fgmres(op, b, la::zeros(64), nested_opts.outer, box);

  ASSERT_EQ(direct.status, krylov::FgmresStatus::Converged);
  ASSERT_EQ(sandboxed.status, krylov::FgmresStatus::Converged);
  EXPECT_EQ(sandboxed.outer_iterations, direct.outer_iterations);
  EXPECT_EQ(box.stats().invocations, sandboxed.outer_iterations);
}
