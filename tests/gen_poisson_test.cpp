#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "gen/poisson.hpp"
#include "sparse/analysis.hpp"

namespace gen = sdcgmres::gen;
namespace sparse = sdcgmres::sparse;

TEST(Poisson1d, Stencil) {
  const auto A = gen::poisson1d(4);
  EXPECT_EQ(A.rows(), 4u);
  EXPECT_EQ(A.nnz(), 3u * 4u - 2u);
  EXPECT_EQ(A.at(0, 0), 2.0);
  EXPECT_EQ(A.at(0, 1), -1.0);
  EXPECT_EQ(A.at(1, 0), -1.0);
  EXPECT_EQ(A.at(0, 3), 0.0);
}

TEST(Poisson1d, ZeroSizeThrows) {
  EXPECT_THROW((void)gen::poisson1d(0), std::invalid_argument);
}

TEST(Poisson2d, MatchesGalleryDimensions) {
  // The paper's matrix: gallery('poisson', 100) -> 10,000 rows and
  // 49,600 nonzeros (Table I).
  const auto A = gen::poisson2d(100);
  EXPECT_EQ(A.rows(), 10000u);
  EXPECT_EQ(A.cols(), 10000u);
  EXPECT_EQ(A.nnz(), 49600u);
}

TEST(Poisson2d, FrobeniusNormMatchesTable1) {
  // Table I reports ||A||_F = 446 for the Poisson matrix.
  const auto A = gen::poisson2d(100);
  EXPECT_NEAR(A.frobenius_norm(), 446.0, 1.0);
}

TEST(Poisson2d, StencilValues) {
  const auto A = gen::poisson2d(3);
  EXPECT_EQ(A.at(4, 4), 4.0);  // center point
  EXPECT_EQ(A.at(4, 3), -1.0); // west
  EXPECT_EQ(A.at(4, 5), -1.0); // east
  EXPECT_EQ(A.at(4, 1), -1.0); // south
  EXPECT_EQ(A.at(4, 7), -1.0); // north
  EXPECT_EQ(A.at(0, 8), 0.0);  // corner-to-corner: no coupling
}

TEST(Poisson2d, BoundaryRowsHaveFewerNeighbors) {
  const auto A = gen::poisson2d(3);
  EXPECT_EQ(A.row_cols(0).size(), 3u); // corner: self + 2 neighbors
  EXPECT_EQ(A.row_cols(1).size(), 4u); // edge: self + 3 neighbors
  EXPECT_EQ(A.row_cols(4).size(), 5u); // interior: self + 4 neighbors
}

TEST(Poisson2d, IsSpd) {
  const auto A = gen::poisson2d(8);
  EXPECT_TRUE(sparse::is_numerically_symmetric(A));
  EXPECT_TRUE(sparse::probe_positive_definite(A));
}

TEST(Poisson3d, DimensionsAndStencil) {
  const auto A = gen::poisson3d(4);
  EXPECT_EQ(A.rows(), 64u);
  EXPECT_EQ(A.at(21, 21), 6.0); // interior point of the 4x4x4 grid
  EXPECT_EQ(A.row_cols(21).size(), 7u);
  EXPECT_TRUE(sparse::is_numerically_symmetric(A));
}

TEST(Poisson3d, NonzeroCount) {
  // nnz = 7n^3 - 6n^2 for the 7-point stencil on an n^3 grid.
  const std::size_t n = 5;
  const auto A = gen::poisson3d(n);
  EXPECT_EQ(A.nnz(), 7u * n * n * n - 6u * n * n);
}

TEST(Anisotropic2d, ReducesToPoissonAtUnitCoefficients) {
  const auto A = gen::anisotropic2d(6, 1.0, 1.0);
  const auto B = gen::poisson2d(6);
  EXPECT_EQ(A.nnz(), B.nnz());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    for (const std::size_t j : A.row_cols(i)) {
      EXPECT_EQ(A.at(i, j), B.at(i, j));
    }
  }
}

TEST(Anisotropic2d, AnisotropyShowsInStencil) {
  const auto A = gen::anisotropic2d(3, 10.0, 1.0);
  EXPECT_EQ(A.at(4, 4), 22.0); // 2*(10 + 1)
  EXPECT_EQ(A.at(4, 3), -10.0);
  EXPECT_EQ(A.at(4, 1), -1.0);
  EXPECT_TRUE(sparse::is_numerically_symmetric(A));
}
