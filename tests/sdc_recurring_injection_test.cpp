#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/poisson.hpp"
#include "krylov/arnoldi.hpp"
#include "krylov/ft_gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/injection.hpp"

namespace sdc = sdcgmres::sdc;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

TEST(RecurringInjection, ZeroPeriodThrows) {
  EXPECT_THROW(sdc::RecurringFaultCampaign(0, 0, sdc::MgsPosition::First,
                                           sdc::FaultModel::scale(2.0)),
               std::invalid_argument);
}

TEST(RecurringInjection, FiresAtEveryPeriodMultiple) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::RecurringFaultCampaign campaign(/*first=*/2, /*period=*/3,
                                       sdc::MgsPosition::First,
                                       sdc::FaultModel::scale(2.0));
  (void)krylov::arnoldi(op, la::ones(36), 12, krylov::Orthogonalization::MGS,
                        &campaign);
  // Iterations 2, 5, 8, 11 of a 12-step run.
  EXPECT_EQ(campaign.fault_count(), 4u);
  ASSERT_EQ(campaign.log().size(), 4u);
  EXPECT_EQ(campaign.log().events()[0].iteration, 2u);
  EXPECT_EQ(campaign.log().events()[1].iteration, 5u);
  EXPECT_EQ(campaign.log().events()[3].iteration, 11u);
}

TEST(RecurringInjection, RespectsFirstIteration) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::RecurringFaultCampaign campaign(/*first=*/100, /*period=*/1,
                                       sdc::MgsPosition::First,
                                       sdc::FaultModel::scale(2.0));
  (void)krylov::arnoldi(op, la::ones(36), 10, krylov::Orthogonalization::MGS,
                        &campaign);
  EXPECT_EQ(campaign.fault_count(), 0u);
}

TEST(RecurringInjection, LastPositionHitsDiagonalStep) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::RecurringFaultCampaign campaign(0, 4, sdc::MgsPosition::Last,
                                       sdc::FaultModel::scale(3.0));
  (void)krylov::arnoldi(op, la::ones(36), 9, krylov::Orthogonalization::MGS,
                        &campaign);
  ASSERT_GE(campaign.fault_count(), 2u);
  for (const auto& e : campaign.log().events()) {
    EXPECT_EQ(e.coefficient, e.iteration); // i == j for the Last position
  }
}

TEST(RecurringInjection, CountsAcrossInnerSolves) {
  const auto A = gen::poisson2d(8);
  krylov::FtGmresOptions opts;
  opts.inner.max_iters = 10;
  opts.outer.tol = 1e-8;
  sdc::RecurringFaultCampaign campaign(0, 10, sdc::MgsPosition::Last,
                                       sdc::fault_classes::slightly_smaller());
  const auto res = krylov::ft_gmres(A, la::ones(64), opts, &campaign);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  // One fault per inner solve (period == inner length).
  EXPECT_EQ(campaign.fault_count(), res.outer_iterations);
}

TEST(RecurringInjection, ResetReArms) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::RecurringFaultCampaign campaign(0, 2, sdc::MgsPosition::First,
                                       sdc::FaultModel::scale(2.0));
  (void)krylov::arnoldi(op, la::ones(36), 6, krylov::Orthogonalization::MGS,
                        &campaign);
  const std::size_t first_count = campaign.fault_count();
  ASSERT_GT(first_count, 0u);
  campaign.reset();
  EXPECT_EQ(campaign.fault_count(), 0u);
  (void)krylov::arnoldi(op, la::ones(36), 6, krylov::Orthogonalization::MGS,
                        &campaign);
  EXPECT_EQ(campaign.fault_count(), first_count);
}

TEST(RecurringInjection, FtGmresSurvivesModerateRate) {
  // The headline of bench_ablation_fault_rate as a regression test: one
  // class-1 fault every 25 inner iterations costs at most a couple of
  // outer iterations.
  const auto A = gen::poisson2d(10);
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  const auto baseline = krylov::ft_gmres(A, la::ones(100), opts);

  sdc::RecurringFaultCampaign campaign(3, 10, sdc::MgsPosition::Last,
                                       sdc::fault_classes::very_large());
  const auto faulty = krylov::ft_gmres(A, la::ones(100), opts, &campaign);
  ASSERT_GE(campaign.fault_count(), 2u);
  EXPECT_EQ(faulty.status, krylov::SolveStatus::Converged);
  EXPECT_LE(faulty.outer_iterations, baseline.outer_iterations + 4);
}
