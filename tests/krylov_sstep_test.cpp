#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/gmres.hpp"
#include "krylov/hooks.hpp"
#include "krylov/matrix_powers.hpp"
#include "krylov/operator.hpp"
#include "krylov/precond.hpp"
#include "la/blas1.hpp"
#include "la/block.hpp"
#include "sdc/injection.hpp"
#include "solver/solver.hpp"

namespace krylov = sdcgmres::krylov;
namespace solver = sdcgmres::solver;
namespace sdc = sdcgmres::sdc;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

double explicit_residual(const sdcgmres::sparse::CsrMatrix& A,
                         const la::Vector& b, const la::Vector& x) {
  la::Vector r(A.rows());
  A.spmv(x, r);
  la::waxpby(1.0, b, -1.0, r, r);
  return la::nrm2(r);
}

bool bitwise_equal(const la::Vector& a, const la::Vector& b) {
  if (a.size() != b.size()) return false;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

} // namespace

// ---------------------------------------------------------------------------
// The matrix-powers kernel (the engine's bitwise reference)
// ---------------------------------------------------------------------------

TEST(MatrixPowers, MatchesChainedSpmvBitwise) {
  const auto A = gen::convection_diffusion2d(8, 12.0, -3.0);
  const krylov::CsrOperator op(A);
  const la::Vector v = la::ones(A.rows());

  la::BlockWorkspace block;
  block.reserve(A.rows(), 4);
  krylov::matrix_powers(op, v.span(), block.view(4));

  la::Vector expect = v;
  la::Vector next(A.rows());
  for (std::size_t k = 0; k < 4; ++k) {
    for (std::size_t i = 0; i < A.rows(); ++i) {
      EXPECT_EQ(block.view(4).col(k)[i], expect[i])
          << "power " << k << " element " << i;
    }
    A.spmv(expect, next);
    expect = next;
  }
}

TEST(MatrixPowers, AppliesNewtonShifts) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  const la::Vector v = la::ones(A.rows());
  const double shifts[] = {0.5, 2.0};

  la::BlockWorkspace block;
  block.reserve(A.rows(), 3);
  krylov::matrix_powers(op, v.span(), block.view(3), shifts);

  // p1 = (A - 0.5 I) v, p2 = (A - 2 I) p1, computed independently.
  la::Vector p1(A.rows()), p2(A.rows());
  A.spmv(v, p1);
  la::axpy(-0.5, std::span<const double>(v.span()), p1.span());
  A.spmv(p1, p2);
  la::axpy(-2.0, std::span<const double>(p1.span()), p2.span());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    EXPECT_EQ(block.view(3).col(1)[i], p1[i]);
    EXPECT_EQ(block.view(3).col(2)[i], p2[i]);
  }
}

TEST(MatrixPowers, ValidatesShapes) {
  const auto A = gen::poisson2d(4);
  const krylov::CsrOperator op(A);
  const la::Vector v = la::ones(A.rows());
  la::BlockWorkspace block;
  block.reserve(A.rows(), 3);
  const la::Vector wrong = la::ones(A.rows() + 1);
  EXPECT_THROW(krylov::matrix_powers(op, wrong.span(), block.view(3)),
               std::invalid_argument);
  const double one_shift[] = {1.0};
  EXPECT_THROW(
      krylov::matrix_powers(op, v.span(), block.view(3), one_shift),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// s-step GMRES: correctness and the staged-powers protocol
// ---------------------------------------------------------------------------

TEST(SStepGmres, ConvergesOnPoissonAtSeveralBlockSizes) {
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(A.rows());
  for (const std::size_t s : {2u, 3u, 4u}) {
    krylov::GmresOptions opts;
    opts.max_iters = 300;
    opts.tol = 1e-10;
    opts.s_step = s;
    const auto res = krylov::gmres(A, b, opts);
    EXPECT_EQ(res.status, krylov::SolveStatus::Converged) << "s=" << s;
    EXPECT_LE(explicit_residual(A, b, res.x), 1e-9 * la::nrm2(b))
        << "s=" << s;
  }
}

TEST(SStepGmres, ConvergesOnNonsymmetricWithRestart) {
  const auto A = gen::convection_diffusion2d(10, 20.0, -5.0);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 300;
  opts.restart = 30;
  opts.tol = 1e-10;
  opts.s_step = 4;
  const auto res = krylov::gmres(A, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-8);
}

TEST(SStepGmres, SEqualsOneIsBitwiseIdenticalToTheClassicalPath) {
  const auto A = gen::convection_diffusion2d(9, 15.0, 5.0);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions classical;
  classical.max_iters = 120;
  classical.tol = 1e-10;
  krylov::GmresOptions sstep = classical;
  sstep.s_step = 1;
  const auto base = krylov::gmres(A, b, classical);
  const auto one = krylov::gmres(A, b, sstep);
  EXPECT_EQ(base.status, one.status);
  EXPECT_EQ(base.iterations, one.iterations);
  EXPECT_EQ(base.global_syncs, one.global_syncs);
  EXPECT_TRUE(bitwise_equal(base.x, one.x));
}

TEST(SStepGmres, StagedPowersMatchTheKernelBitwise) {
  // The engine's first staged block and the standalone matrix_powers
  // kernel must produce the same doubles: same seed (q0 = b/||b||),
  // same chain of width-1 products.
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  constexpr std::size_t kS = 4;

  struct PowerCapture final : krylov::ArnoldiHook {
    std::vector<la::Vector> powers;
    std::size_t block_size = 0;
    void on_power_computed(const krylov::ArnoldiContext& ctx,
                           std::size_t power_index, std::size_t block,
                           std::span<double> power) override {
      (void)ctx;
      if (power_index == powers.size() && powers.size() < kS) {
        block_size = block;
        powers.emplace_back(power.size());
        std::copy(power.begin(), power.end(), powers.back().data());
      }
    }
  } capture;

  krylov::GmresOptions opts;
  opts.max_iters = 60;
  opts.tol = 1e-10;
  opts.s_step = kS;
  la::Vector x(A.rows());
  (void)krylov::gmres_in_place(op, b.span(), x.span(), opts, &capture);
  ASSERT_EQ(capture.powers.size(), kS);
  EXPECT_EQ(capture.block_size, kS);

  la::Vector q0 = b;
  la::scal(1.0 / la::nrm2(b), q0.span());
  la::BlockWorkspace block;
  block.reserve(A.rows(), kS + 1);
  krylov::matrix_powers(op, q0.span(), block.view(kS + 1));
  for (std::size_t t = 0; t < kS; ++t) {
    const std::span<double> expect = block.view(kS + 1).col(t + 1);
    for (std::size_t i = 0; i < A.rows(); ++i) {
      EXPECT_EQ(capture.powers[t][i], expect[i])
          << "power " << t << " element " << i;
    }
  }
}

TEST(SStepGmres, ValidatesBlockSizeUpFront) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 50;
  opts.restart = 8;
  opts.s_step = 0;
  EXPECT_THROW((void)krylov::gmres(A, b, opts), std::invalid_argument);
  opts.s_step = 9; // > restart cycle length
  try {
    (void)krylov::gmres(A, b, opts);
    FAIL() << "s_step > restart must throw";
  } catch (const std::invalid_argument& e) {
    // The error lists the valid range so a sweep over s= fails usefully.
    EXPECT_NE(std::string(e.what()).find("1..8"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Synchronization accounting
// ---------------------------------------------------------------------------

TEST(SStepGmres, CountsTwoSyncsPerBlockPlusStartup) {
  // A 25-iteration fixed-effort MGS solve (the paper's inner protocol):
  //   s=1: 2 startup + per iteration (w_norm + MGS passes + hnext) = 377
  //   s=2: 2 + ceil(25/2) blocks x 2                              = 28
  //   s=4: 2 + ceil(25/4) blocks x 2                              = 16
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 25;
  opts.tol = 0.0; // fixed effort: run out the budget
  const auto count = [&](std::size_t s) {
    krylov::GmresOptions o = opts;
    o.s_step = s;
    return krylov::gmres(A, b, o).global_syncs;
  };
  EXPECT_EQ(count(1), 377u);
  EXPECT_EQ(count(2), 28u);
  EXPECT_EQ(count(4), 16u);
}

TEST(SStepFtGmres, InnerSyncsDropAtLeastTwofoldWithinTwoExtraOuters) {
  // The tentpole acceptance: on the Figure-3 grid, global reductions per
  // converged solve drop >= 2x at s in {2, 4} while the outer iteration
  // count grows by at most 2.
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(A.rows());
  krylov::FtGmresOptions base;
  base.outer.tol = 1e-8;

  const auto run = [&](std::size_t s) {
    krylov::FtGmresOptions o = base;
    o.inner.s_step = s;
    return krylov::ft_gmres(A, b, o);
  };
  const auto classical = run(1);
  ASSERT_EQ(classical.status, krylov::SolveStatus::Converged);
  ASSERT_GT(classical.global_syncs, 0u);

  for (const std::size_t s : {2u, 4u}) {
    const auto sstep = run(s);
    EXPECT_EQ(sstep.status, krylov::SolveStatus::Converged) << "s=" << s;
    EXPECT_LE(sstep.outer_iterations, classical.outer_iterations + 2)
        << "s=" << s;
    EXPECT_LE(sstep.global_syncs * 2, classical.global_syncs) << "s=" << s;
    EXPECT_LE(explicit_residual(A, b, sstep.x), 1e-8 * la::nrm2(b) * 1.01)
        << "s=" << s;
  }
}

TEST(SStepFtGmres, RecordsPerInnerSolveSyncs) {
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(A.rows());
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  opts.inner.max_iters = 10;
  opts.inner.s_step = 2;
  const auto res = krylov::ft_gmres(A, b, opts);
  ASSERT_FALSE(res.inner_solves.empty());
  std::size_t inner_total = 0;
  for (const auto& rec : res.inner_solves) {
    // 2 startup + ceil(10/2) blocks x 2 = 12 for a full-budget solve.
    EXPECT_EQ(rec.global_syncs, 12u);
    inner_total += rec.global_syncs;
  }
  // The nested total is the outer's own reductions plus every inner's.
  EXPECT_GT(res.global_syncs, inner_total);
}

// ---------------------------------------------------------------------------
// The façade: s= threading and family rejection
// ---------------------------------------------------------------------------

TEST(SStepFacade, GmresReportsSyncsAndHonorsS) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());

  solver::Options classical;
  classical.max_iters = 120;
  classical.tol = 1e-9;
  solver::Options sstep = classical;
  sstep.s_step = 4;

  solver::GmresSolver plain(op, classical);
  solver::GmresSolver blocked(op, sstep);
  solver::SolveReport r1, r4;
  const la::Vector x1 = plain.solve(b, &r1);
  const la::Vector x4 = blocked.solve(b, &r4);
  EXPECT_TRUE(r1.converged());
  EXPECT_TRUE(r4.converged());
  EXPECT_GT(r1.global_syncs, 0u);
  EXPECT_LE(r4.global_syncs * 2, r1.global_syncs);
}

TEST(SStepFacade, SEqualsOneFacadeSolveIsBitwiseIdentical) {
  // s=1 through every solver family that accepts the key must match the
  // default-options path bitwise (the façade identity contract).
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());

  solver::Options dflt;
  dflt.tol = 1e-9;
  solver::Options explicit_one = dflt;
  explicit_one.s_step = 1;

  {
    solver::GmresSolver a(op, dflt), c(op, explicit_one);
    solver::SolveReport ra, rc;
    EXPECT_TRUE(bitwise_equal(a.solve(b, &ra), c.solve(b, &rc)));
    EXPECT_EQ(ra.global_syncs, rc.global_syncs);
  }
  {
    solver::FtGmresSolver a(op, dflt), c(op, explicit_one);
    solver::SolveReport ra, rc;
    EXPECT_TRUE(bitwise_equal(a.solve(b, &ra), c.solve(b, &rc)));
    EXPECT_EQ(ra.global_syncs, rc.global_syncs);
  }
  {
    solver::BatchedFtGmresSolver a(op, dflt), c(op, explicit_one);
    solver::SolveReport ra, rc;
    EXPECT_TRUE(bitwise_equal(a.solve(b, &ra), c.solve(b, &rc)));
    EXPECT_EQ(ra.global_syncs, rc.global_syncs);
  }
}

TEST(SStepFacade, BatchedSolveMatchesSoloAtSGreaterThanOne) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  solver::Options opts;
  opts.tol = 1e-8;
  opts.inner_iters = 10;
  opts.s_step = 4;

  solver::FtGmresSolver solo(op, opts);
  solver::BatchedFtGmresSolver batched(op, opts);
  solver::SolveReport rs, rb;
  const la::Vector xs = solo.solve(b, &rs);
  const la::Vector xb = batched.solve(b, &rb);
  EXPECT_TRUE(bitwise_equal(xs, xb));
  EXPECT_EQ(rs.global_syncs, rb.global_syncs);
  EXPECT_EQ(rs.iterations, rb.iterations);
}

TEST(SStepFacade, UnsupportedFamiliesRejectSGreaterThanOne) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  solver::Options opts;
  opts.s_step = 2;
  EXPECT_THROW(solver::FgmresSolver s(op, opts), std::invalid_argument);
  EXPECT_THROW(solver::CgSolver s(op, opts), std::invalid_argument);
  EXPECT_THROW(solver::FcgSolver s(op, opts), std::invalid_argument);
  EXPECT_THROW(solver::FtCgSolver s(op, opts), std::invalid_argument);
}

TEST(SStepFacade, RightPreconditionerIsIncompatibleWithSStep) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.s_step = 2;
  krylov::JacobiPreconditioner jacobi(A);
  opts.right_precond = &jacobi;
  EXPECT_THROW((void)krylov::gmres(A, b, opts), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault injection into staged powers
// ---------------------------------------------------------------------------

TEST(SStepInjection, PowerElementFaultFiresAndPerturbsTheSolve) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());

  krylov::GmresOptions opts;
  opts.max_iters = 80;
  opts.tol = 1e-10;
  opts.s_step = 4;

  sdc::InjectionPlan plan;
  plan.target = sdc::InjectionTarget::PowerElement;
  plan.aggregate_iteration = 2; // a mid-block staging step
  plan.element_index = 5;
  plan.model = sdc::FaultModel::scale(1e8);
  sdc::FaultCampaign campaign(plan);

  la::Vector x(A.rows());
  (void)krylov::gmres_in_place(op, b.span(), x.span(), opts, &campaign);
  EXPECT_TRUE(campaign.fired());
  ASSERT_FALSE(campaign.log().events().empty());
  EXPECT_NE(campaign.log().events().front().description.find("power"),
            std::string::npos);

  // The corrupted block taints the basis, so the faulty iterate must
  // differ from the clean one -- the fault was not silently dropped.
  const auto clean = krylov::gmres(A, b, opts);
  EXPECT_FALSE(bitwise_equal(x, clean.x));
}
