/// \file sparse_mixed_csr_test.cpp
/// \brief The narrowed CSR mirror (CsrMatrixT): (double, int32) bitwise
/// identity with the source matrix, float accuracy, construction-time
/// overflow validation, and the hard-coded-width audit of the spmm /
/// norm-estimation helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "la/krylov_basis.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"
#include "sparse/csr_mixed.hpp"
#include "sparse/norms.hpp"

namespace sparse = sdcgmres::sparse;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

la::Vector test_rhs(std::size_t n, double phase) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.7 * static_cast<double>(i + 1) + phase);
  }
  return v;
}

template <typename S>
la::KrylovBasisT<S> test_block(std::size_t n, std::size_t b) {
  la::KrylovBasisT<S> x(n, b);
  for (std::size_t c = 0; c < b; ++c) {
    std::span<S> col = x.append();
    for (std::size_t i = 0; i < n; ++i) {
      col[i] = static_cast<S>(
          std::sin(0.9 * static_cast<double>(i + 1) +
                   1.3 * static_cast<double>(c)));
    }
  }
  return x;
}

} // namespace

TEST(MixedCsr, NarrowingCopyPreservesStructure) {
  const auto A = gen::poisson2d(12); // n = 144
  const sparse::CsrMatrixT<double, std::int32_t> M(A);
  ASSERT_EQ(M.rows(), A.rows());
  ASSERT_EQ(M.cols(), A.cols());
  ASSERT_EQ(M.nnz(), A.nnz());
  ASSERT_EQ(M.row_ptr().size(), A.row_ptr().size());
  for (std::size_t i = 0; i < A.row_ptr().size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(M.row_ptr()[i]), A.row_ptr()[i]) << i;
  }
  for (std::size_t k = 0; k < A.nnz(); ++k) {
    EXPECT_EQ(static_cast<std::size_t>(M.col_idx()[k]), A.col_idx()[k]) << k;
    EXPECT_EQ(M.values()[k], A.values()[k]) << k;
  }
}

TEST(MixedCsr, DoubleInt32SpmvIsBitwiseIdenticalToSource) {
  // Index narrowing never enters the arithmetic, so the (double, int32)
  // mirror's spmv must be bitwise equal to the source CsrMatrix's -- the
  // identity that makes index=32 solves equal to the default.
  const auto A = gen::convection_diffusion2d(30, 1.0, 0.5); // n = 900
  const sparse::CsrMatrixT<double, std::int32_t> M(A);
  const la::Vector x = test_rhs(A.cols(), 0.4);
  la::Vector y_ref(A.rows());
  A.spmv(x.span(), y_ref.span());
  std::vector<double> y(A.rows());
  M.spmv(std::span<const double>(x.span()), std::span<double>(y));
  for (std::size_t i = 0; i < A.rows(); ++i) EXPECT_EQ(y[i], y_ref[i]) << i;
}

TEST(MixedCsr, DoubleInt32SpmmIsBitwiseIdenticalToSource) {
  const auto A = gen::poisson2d(25); // n = 625
  const sparse::CsrMatrixT<double, std::int32_t> M(A);
  for (const std::size_t b : {1u, 3u, 4u, 5u}) {
    const auto x = test_block<double>(A.cols(), b);
    la::KrylovBasis y_ref(A.rows(), b);
    for (std::size_t c = 0; c < b; ++c) (void)y_ref.append();
    A.spmm(x.view(), y_ref);

    la::KrylovBasisT<double> y(A.rows(), b);
    for (std::size_t c = 0; c < b; ++c) (void)y.append();
    M.spmm(x.view(), la::block(y, b));
    for (std::size_t c = 0; c < b; ++c) {
      const std::span<const double> got = y.col(c);
      const std::span<const double> ref = y_ref.col(c);
      for (std::size_t i = 0; i < A.rows(); ++i) {
        EXPECT_EQ(got[i], ref[i]) << "b=" << b << " col " << c << " row " << i;
      }
    }
  }
}

TEST(MixedCsr, FloatSpmvMatchesDoubleToSinglePrecision) {
  const auto A = gen::poisson2d(20); // n = 400
  const sparse::CsrMatrixT<float, std::int32_t> M(A);
  const la::Vector x = test_rhs(A.cols(), 1.1);
  la::Vector y_ref(A.rows());
  A.spmv(x.span(), y_ref.span());

  std::vector<float> xf(A.cols()), yf(A.rows());
  for (std::size_t i = 0; i < A.cols(); ++i) {
    xf[i] = static_cast<float>(x[i]);
  }
  M.spmv(std::span<const float>(xf), std::span<float>(yf));
  for (std::size_t i = 0; i < A.rows(); ++i) {
    // ~5 terms per row, values in [-1, 8]: single-precision roundoff.
    EXPECT_NEAR(static_cast<double>(yf[i]), y_ref[i], 5e-6) << i;
  }
}

TEST(MixedCsr, FloatSpmmMatchesColumnwiseFloatSpmv) {
  // Same bitwise column contract as the double kernels: each SpMM output
  // column accumulates in exactly spmv's order, in float.
  const auto A = gen::poisson2d(18); // n = 324
  const sparse::CsrMatrixT<float, std::int32_t> M(A);
  for (const std::size_t b : {2u, 4u, 7u}) {
    const auto x = test_block<float>(A.cols(), b);
    la::KrylovBasisT<float> y(A.rows(), b);
    for (std::size_t c = 0; c < b; ++c) (void)y.append();
    M.spmm(x.view(), la::block(y, b));

    std::vector<float> ref(A.rows());
    for (std::size_t c = 0; c < b; ++c) {
      M.spmv(x.col(c), std::span<float>(ref));
      const std::span<const float> got = y.col(c);
      for (std::size_t i = 0; i < A.rows(); ++i) {
        EXPECT_EQ(got[i], ref[i]) << "b=" << b << " col " << c << " row " << i;
      }
    }
  }
}

TEST(MixedCsr, ConstructionThrowsWhenShapeOverflowsIndexType) {
  // int16 mirror of a matrix with nnz > 32767: row_ptr entries reach nnz,
  // so construction must refuse rather than truncate.
  const auto big = gen::poisson2d(85); // n = 7225, nnz = 35705 > int16 max
  ASSERT_GT(big.nnz(), 32767u);
  EXPECT_THROW((sparse::CsrMatrixT<double, std::int16_t>(big)),
               std::overflow_error);
  // The same matrix fits int32 comfortably.
  EXPECT_NO_THROW((sparse::CsrMatrixT<double, std::int32_t>(big)));

  // Dimension overflow without large allocation: 1 row, 2^32 columns, one
  // stored entry -- cols alone overflows int32.
  const sparse::CsrMatrix wide(1, (std::size_t{1} << 32), {0, 1}, {0}, {1.0});
  EXPECT_THROW((sparse::CsrMatrixT<double, std::int32_t>(wide)),
               std::overflow_error);
  EXPECT_NO_THROW((sparse::CsrMatrixT<double, std::int64_t>(wide)));
}

TEST(MixedCsr, SpmvShapeValidation) {
  const auto A = gen::poisson2d(8);
  const sparse::CsrMatrixT<float, std::int32_t> M(A);
  std::vector<float> x(A.cols()), y(A.rows());
  std::vector<float> bad_x(A.cols() + 1), bad_y(A.rows() - 1);
  EXPECT_THROW(M.spmv(std::span<const float>(bad_x), std::span<float>(y)),
               std::invalid_argument);
  EXPECT_THROW(M.spmv(std::span<const float>(x), std::span<float>(bad_y)),
               std::invalid_argument);
}

TEST(MixedCsr, NormEstimatorsAcceptAnyShapeAudit) {
  // Satellite audit: estimate_two_norm_batch runs entirely on the
  // double/size_t source matrix (the reliable plane) -- the mixed mirror
  // never feeds the calibration.  This pins the contract: batched and
  // scalar estimates agree on the matrix the mirror was narrowed FROM,
  // so a detector bound calibrated once serves every precision plane.
  const auto A = gen::poisson2d(10); // n = 100, sigma_max ~ 7.9
  const auto scalar = sparse::estimate_two_norm(A);
  const auto batched = sparse::estimate_two_norm_batch(A, 4);
  EXPECT_NEAR(batched.value, scalar.value, 1e-6 * scalar.value);
}
