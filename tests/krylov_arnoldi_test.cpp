#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "gen/poisson.hpp"
#include "gen/convection_diffusion.hpp"
#include "krylov/arnoldi.hpp"
#include "la/blas1.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

/// Start vector with components on (generically) all eigenvectors.  A
/// constant vector excites only ~10 distinct eigenvalues of the Poisson
/// grids, so long Arnoldi runs from `ones` would walk past an effective
/// invariant subspace into roundoff noise.
la::Vector generic_vector(std::size_t n) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + 0.3) +
           0.01 * static_cast<double>(i % 13);
  }
  return v;
}

double hessenberg_relation_error(const krylov::LinearOperator& A,
                                 const krylov::ArnoldiResult& res) {
  // || A q_j - sum_i h(i,j) q_i ||, maximized over j < steps.
  double worst = 0.0;
  for (std::size_t j = 0; j < res.steps; ++j) {
    la::Vector aq(A.rows());
    A.apply(res.q.col(j), aq);
    for (std::size_t i = 0; i <= j + 1 && i < res.q.cols(); ++i) {
      la::axpy(-res.h(i, j), res.q.col(i), aq.span());
    }
    worst = std::max(worst, la::nrm2(aq));
  }
  return worst;
}

double basis_orthonormality_defect(const krylov::ArnoldiResult& res) {
  double worst = 0.0;
  for (std::size_t a = 0; a < res.q.cols(); ++a) {
    for (std::size_t b = a; b < res.q.cols(); ++b) {
      const double target = (a == b) ? 1.0 : 0.0;
      worst = std::max(worst,
                       std::abs(la::dot(res.q.col(a), res.q.col(b)) - target));
    }
  }
  return worst;
}

} // namespace

TEST(Arnoldi, BasisIsOrthonormal) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const auto res = krylov::arnoldi(op, generic_vector(64), 10);
  EXPECT_EQ(res.steps, 10u);
  EXPECT_LT(basis_orthonormality_defect(res), 1e-12);
}

TEST(Arnoldi, HessenbergRelationHolds) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const auto res = krylov::arnoldi(op, generic_vector(64), 10);
  EXPECT_LT(hessenberg_relation_error(op, res), 1e-12);
}

TEST(Arnoldi, ConstantStartVectorExposesEffectiveInvariantSubspace) {
  // Documenting the phenomenon above: from `ones`, the residual subdiagonal
  // entries collapse by ~6 orders of magnitude within a dozen steps as the
  // small invariant subspace is exhausted.
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const auto res = krylov::arnoldi(op, la::ones(64), 12,
                                   krylov::Orthogonalization::MGS, nullptr,
                                   /*breakdown_tol=*/1e-8);
  EXPECT_TRUE(res.breakdown);
  EXPECT_LT(res.steps, 12u);
}

TEST(Arnoldi, SymmetricMatrixGivesTridiagonalH) {
  // Paper Fig. 2: SPD input makes H tridiagonal -- entries h(i,j) with
  // i < j-1 must vanish.
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  const auto res = krylov::arnoldi(op, la::ones(100), 12);
  for (std::size_t j = 0; j < res.steps; ++j) {
    for (std::size_t i = 0; i + 1 < j; ++i) {
      EXPECT_NEAR(res.h(i, j), 0.0, 1e-10)
          << "h(" << i << "," << j << ") should be ~0 for SPD input";
    }
  }
}

TEST(Arnoldi, NonsymmetricMatrixFillsUpperHessenberg) {
  const auto A = gen::convection_diffusion2d(10, 30.0, 10.0);
  const krylov::CsrOperator op(A);
  const auto res = krylov::arnoldi(op, la::ones(100), 12);
  // At least one genuinely upper entry (i < j-1) must be non-negligible.
  double largest_upper = 0.0;
  for (std::size_t j = 0; j < res.steps; ++j) {
    for (std::size_t i = 0; i + 1 < j; ++i) {
      largest_upper = std::max(largest_upper, std::abs(res.h(i, j)));
    }
  }
  EXPECT_GT(largest_upper, 1e-6);
}

TEST(Arnoldi, HappyBreakdownOnInvariantSubspace) {
  // Start vector = eigenvector of the 1-D Laplacian => one-dimensional
  // Krylov space, breakdown at step 1.
  const std::size_t n = 16;
  const auto A = gen::poisson1d(n);
  const krylov::CsrOperator op(A);
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(M_PI * static_cast<double>(i + 1) /
                    static_cast<double>(n + 1));
  }
  const auto res = krylov::arnoldi(op, v, 5, krylov::Orthogonalization::MGS,
                                   nullptr, 1e-10);
  EXPECT_TRUE(res.breakdown);
  EXPECT_EQ(res.steps, 1u);
}

TEST(Arnoldi, SubdiagonalEntriesAreNonnegative) {
  const auto A = gen::convection_diffusion2d(8, 5.0, -3.0);
  const krylov::CsrOperator op(A);
  const auto res = krylov::arnoldi(op, la::ones(64), 8);
  for (std::size_t j = 0; j < res.steps; ++j) {
    EXPECT_GE(res.h(j + 1, j), 0.0);
  }
}

TEST(Arnoldi, RejectsNonSquareOperator) {
  sdcgmres::sparse::CooMatrix coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.add(1, 2, 1.0);
  const sdcgmres::sparse::CsrMatrix A{std::move(coo)};
  const krylov::CsrOperator op(A);
  EXPECT_THROW((void)krylov::arnoldi(op, la::ones(3), 2),
               std::invalid_argument);
}

TEST(Arnoldi, RejectsZeroStartVector) {
  const auto A = gen::poisson1d(4);
  const krylov::CsrOperator op(A);
  EXPECT_THROW((void)krylov::arnoldi(op, la::zeros(4), 2),
               std::invalid_argument);
}

TEST(Arnoldi, RejectsMismatchedStartVector) {
  const auto A = gen::poisson1d(4);
  const krylov::CsrOperator op(A);
  EXPECT_THROW((void)krylov::arnoldi(op, la::ones(5), 2),
               std::invalid_argument);
}
