#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "experiment/journal.hpp"
#include "experiment/report.hpp"
#include "experiment/scenario.hpp"
#include "service/scheduler.hpp"
#include "service/spool.hpp"

namespace service = sdcgmres::service;
namespace experiment = sdcgmres::experiment;

namespace {

std::string fresh_root(const char* name) {
  return testing::TempDir() + "sdcgmres_sched_" + name + "_" +
         std::to_string(::getpid());
}

service::SchedulerOptions quick_options(const std::string& root) {
  service::SchedulerOptions options;
  options.root = root;
  options.max_concurrent_jobs = 1;
  options.poll_ms = 5;
  return options;
}

/// Poll until \p done returns true or ~30 s pass.
template <typename F>
bool wait_for(F&& done) {
  for (int i = 0; i < 3000; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

/// The result JSON a direct `sdc_run --json` run of \p spec_text emits.
std::string direct_json(const std::string& spec_text) {
  const experiment::ScenarioResult result =
      experiment::run_scenario(experiment::ScenarioSpec::parse(spec_text));
  std::ostringstream out;
  experiment::write_scenario_json(out, result);
  return out.str();
}

constexpr const char* kSweepSpec =
    "matrix=poisson n=20 inner=10 sweep=1 fault=class1 site_limit=12";

} // namespace

TEST(SweepScheduler, ServiceResultIsBitwiseIdenticalToDirectRun) {
  service::SweepScheduler scheduler(quick_options(fresh_root("identical")));
  scheduler.start();
  const std::string id =
      scheduler.submit(std::string("tenant=alice priority=3\n") + kSweepSpec +
                       "\n# trailing comment\n");
  ASSERT_TRUE(wait_for([&] {
    return scheduler.status(id).state == service::JobStatus::State::Done;
  }));
  std::string got;
  ASSERT_TRUE(scheduler.read_result(id, &got));
  EXPECT_EQ(got, direct_json(kSweepSpec))
      << "the service must emit exactly the bytes sdc_run --json emits";
  scheduler.stop();
}

TEST(SweepScheduler, SingleSolveJobsRunToo) {
  service::SweepScheduler scheduler(quick_options(fresh_root("solve")));
  scheduler.start();
  const std::string spec = "solver=gmres matrix=poisson n=12 precond=ilu0";
  const std::string id = scheduler.submit(spec + "\n");
  ASSERT_TRUE(wait_for([&] {
    return scheduler.status(id).state == service::JobStatus::State::Done;
  }));
  std::string got;
  ASSERT_TRUE(scheduler.read_result(id, &got));
  EXPECT_EQ(got, direct_json(spec));
  scheduler.stop();
}

TEST(SweepScheduler, RepeatedMatrixBurstHitsTheArtifactCache) {
  service::SweepScheduler scheduler(quick_options(fresh_root("cachehit")));
  scheduler.start();
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(scheduler.submit(std::string(kSweepSpec) + "\n"));
  }
  ASSERT_TRUE(wait_for([&] {
    return scheduler.status(ids.back()).state ==
           service::JobStatus::State::Done;
  }));
  const service::SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GT(stats.cache.hits, 0u)
      << "jobs 2 and 3 must reuse job 1's matrix and calibration";
  // Identical jobs produce identical result bytes.
  std::string first, last;
  ASSERT_TRUE(scheduler.read_result(ids.front(), &first));
  ASSERT_TRUE(scheduler.read_result(ids.back(), &last));
  EXPECT_EQ(first, last);
  scheduler.stop();
}

TEST(SweepScheduler, MalformedJobsAreQuarantinedWithAReason) {
  service::SweepScheduler scheduler(quick_options(fresh_root("quarantine")));
  scheduler.start();
  const std::string dup = scheduler.submit("matrix=poisson\nn=20\nn=40\n");
  const std::string typo = scheduler.submit("matrix=poisson positon=first\n");
  const std::string owned = scheduler.submit("matrix=poisson resume=1\n");
  ASSERT_TRUE(wait_for([&] { return scheduler.stats().failed == 3; }));

  const service::JobStatus dup_status = scheduler.status(dup);
  EXPECT_EQ(dup_status.state, service::JobStatus::State::Failed);
  EXPECT_NE(dup_status.reason.find("duplicate key 'n'"), std::string::npos);

  EXPECT_NE(scheduler.status(typo).reason.find("positon"), std::string::npos);
  EXPECT_NE(scheduler.status(owned).reason.find("owned by the scheduler"),
            std::string::npos);

  // Quarantined, not lost: job file and reason file sit in failed/.
  EXPECT_EQ(service::list_jobs(scheduler.spool().failed).size(), 3u);
  EXPECT_EQ(scheduler.stats().completed, 0u);
  scheduler.stop();
}

TEST(SweepScheduler, PerTenantRoundRobinUnderSaturatedQueue) {
  const std::string root = fresh_root("fairness");
  std::vector<std::string> order;
  std::mutex order_mutex;
  service::SchedulerOptions options = quick_options(root);
  options.on_job_finished = [&](const std::string& id) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(id);
  };

  // Saturate the queue BEFORE any worker runs: alice submits a 4-job
  // burst first, bob two jobs after.  FIFO alone would run alice's whole
  // burst first; round-robin must interleave.
  const service::SpoolPaths paths = service::init_spool(root);
  const std::string solve = "solver=gmres matrix=poisson n=10\n";
  service::submit_job(paths, "j00000001", "tenant=alice\n" + solve);
  service::submit_job(paths, "j00000002", "tenant=alice\n" + solve);
  service::submit_job(paths, "j00000003", "tenant=alice\n" + solve);
  service::submit_job(paths, "j00000004", "tenant=alice\n" + solve);
  service::submit_job(paths, "j00000005", "tenant=bob\n" + solve);
  service::submit_job(paths, "j00000006", "tenant=bob\n" + solve);

  service::SweepScheduler scheduler(options);
  scheduler.start();
  ASSERT_TRUE(wait_for([&] { return scheduler.stats().completed == 6; }));
  scheduler.stop();

  const std::vector<std::string> expected{"j00000001", "j00000005",
                                          "j00000002", "j00000006",
                                          "j00000003", "j00000004"};
  EXPECT_EQ(order, expected)
      << "tenants alternate; a tenant's burst must not starve the other";
}

TEST(SweepScheduler, PriorityOrdersWithinATenantFifoBreaksTies) {
  const std::string root = fresh_root("priority");
  std::vector<std::string> order;
  std::mutex order_mutex;
  service::SchedulerOptions options = quick_options(root);
  options.on_job_finished = [&](const std::string& id) {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(id);
  };
  const service::SpoolPaths paths = service::init_spool(root);
  const std::string solve = "solver=gmres matrix=poisson n=10\n";
  service::submit_job(paths, "j00000001", "priority=0\n" + solve);
  service::submit_job(paths, "j00000002", "priority=5\n" + solve);
  service::submit_job(paths, "j00000003", "priority=5\n" + solve);
  service::submit_job(paths, "j00000004", "priority=-1\n" + solve);

  service::SweepScheduler scheduler(options);
  scheduler.start();
  ASSERT_TRUE(wait_for([&] { return scheduler.stats().completed == 4; }));
  scheduler.stop();

  const std::vector<std::string> expected{"j00000002", "j00000003",
                                          "j00000001", "j00000004"};
  EXPECT_EQ(order, expected)
      << "higher priority first, FIFO among equals, negative last";
}

TEST(SweepScheduler, StopDrainsInFlightWorkAndKeepsTheQueue) {
  const std::string root = fresh_root("drain");
  service::SweepScheduler scheduler(quick_options(root));
  scheduler.start();
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(scheduler.submit(std::string(kSweepSpec) + "\n"));
  }
  // Let the single worker get into (at least) the first job, then drain.
  ASSERT_TRUE(wait_for([&] {
    const service::SchedulerStats stats = scheduler.stats();
    return stats.running > 0 || stats.completed > 0;
  }));
  scheduler.stop();

  // Drained: nothing half-done in running/, every claimed job finished
  // with its result written, the rest still queued.
  const service::SpoolPaths& paths = scheduler.spool();
  EXPECT_TRUE(service::list_jobs(paths.running).empty());
  const std::size_t done = service::list_jobs(paths.done).size();
  const std::size_t queued = service::list_jobs(paths.queue).size();
  EXPECT_EQ(done + queued, ids.size());
  EXPECT_GT(done, 0u);
  for (const std::string& id : service::list_jobs(paths.done)) {
    EXPECT_TRUE(service::file_exists(paths.done + "/" + id + ".json"))
        << "done implies the result file exists";
  }

  // A restart picks the queue back up and finishes everything.
  service::SweepScheduler again(quick_options(root));
  again.start();
  ASSERT_TRUE(wait_for([&] {
    return service::list_jobs(again.spool().done).size() == ids.size();
  }));
  again.stop();
  std::string first, last;
  ASSERT_TRUE(again.read_result(ids.front(), &first));
  ASSERT_TRUE(again.read_result(ids.back(), &last));
  EXPECT_EQ(first, last) << "pre- and post-restart runs of the same spec "
                            "must produce identical bytes";
}

TEST(SweepScheduler, Kill9MidSweepThenRestartResumesBitwiseIdentical) {
  const std::string root = fresh_root("kill9");
  const service::SpoolPaths paths = service::init_spool(root);
  // One job big enough to be mid-flight when the SIGKILL lands.
  const std::string spec =
      "matrix=poisson n=24 inner=12 sweep=1 fault=class1";
  service::submit_job(paths, "j00000001", spec + "\n");
  const std::string journal = paths.journals + "/j00000001.jsonl";

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Crash victim: run the scheduler until the parent SIGKILLs us.
    service::SweepScheduler scheduler(quick_options(root));
    scheduler.start();
    for (;;) ::usleep(100 * 1000);
    ::_exit(0); // not reached
  }

  // Wait until the journal proves real progress, then kill -9 mid-job.
  ASSERT_TRUE(wait_for([&] {
    if (!service::file_exists(journal)) return false;
    try {
      return experiment::tail_sweep_journal(journal).points_done >= 3;
    } catch (const std::exception&) {
      return false;
    }
  }));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // The crash left the job claimed and partially journaled.
  EXPECT_EQ(service::list_jobs(paths.running).size(), 1u);
  const experiment::SweepProgress partial =
      experiment::tail_sweep_journal(journal);
  ASSERT_GT(partial.points_done, 0u);
  ASSERT_LT(partial.points_done, partial.header.n_points)
      << "the SIGKILL must land before the sweep finished for this drill "
         "to mean anything";

  // Restart: running/ is re-queued, the journal resumes, and the final
  // result is bitwise identical to a never-crashed run.
  service::SweepScheduler restarted(quick_options(root));
  restarted.start();
  EXPECT_EQ(restarted.stats().requeued_at_start, 1u);
  ASSERT_TRUE(wait_for([&] {
    return restarted.status("j00000001").state ==
           service::JobStatus::State::Done;
  }));
  std::string got;
  ASSERT_TRUE(restarted.read_result("j00000001", &got));
  EXPECT_EQ(got, direct_json(spec));
  restarted.stop();
}

TEST(SweepScheduler, StatusTracksTheSpoolStates) {
  const std::string root = fresh_root("status");
  service::SweepScheduler scheduler(quick_options(root));
  EXPECT_EQ(scheduler.status("j99999999").state,
            service::JobStatus::State::Unknown);
  // Submitted before start(): stays queued until workers exist.
  const service::SpoolPaths paths = service::init_spool(root);
  service::submit_job(paths, "j00000001",
                      std::string("tenant=carol priority=2\n") + kSweepSpec +
                          "\n");
  scheduler.start();
  ASSERT_TRUE(wait_for([&] {
    return scheduler.status("j00000001").state ==
           service::JobStatus::State::Done;
  }));
  const service::JobStatus done = scheduler.status("j00000001");
  EXPECT_EQ(done.state, service::JobStatus::State::Done);
  EXPECT_TRUE(done.progress.started)
      << "a finished sweep's journal remains its progress record";
  EXPECT_EQ(done.progress.points_done, done.progress.header.n_points);
  EXPECT_TRUE(done.progress.has_stats);
  EXPECT_GT(done.progress.stats.traffic.scalar_bytes, 0u);

  const std::string rendered = service::status_json(done);
  EXPECT_NE(rendered.find("\"state\": \"done\""), std::string::npos);
  EXPECT_NE(rendered.find("\"points_done\""), std::string::npos);
  EXPECT_NE(rendered.find("\"bytes_streamed\""), std::string::npos);
  scheduler.stop();
}

TEST(SweepScheduler, BackendJobsFlowThroughTheCachedAssembly) {
  // A backend=sell job must emit exactly the bytes a direct run emits,
  // and a repeat submission must hit the cached SELL assembly.
  service::SweepScheduler scheduler(quick_options(fresh_root("backend")));
  scheduler.start();
  const std::string spec =
      std::string(kSweepSpec) + " backend=sell threads=2 batch=4";
  const std::string first = scheduler.submit(spec + "\n");
  const std::string second = scheduler.submit(spec + "\n");
  ASSERT_TRUE(wait_for([&] {
    return scheduler.status(second).state == service::JobStatus::State::Done;
  }));
  std::string got_first, got_second;
  ASSERT_TRUE(scheduler.read_result(first, &got_first));
  ASSERT_TRUE(scheduler.read_result(second, &got_second));
  EXPECT_EQ(got_first, direct_json(spec));
  EXPECT_EQ(got_second, got_first);
  EXPECT_NE(got_first.find("\"backend\": \"sell:8:1\""), std::string::npos)
      << got_first.substr(0, 400);
  EXPECT_GT(scheduler.stats().cache.hits, 0u)
      << "the second job must reuse the first job's SELL assembly";
  scheduler.stop();
}
