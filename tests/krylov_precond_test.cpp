#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "gen/poisson.hpp"
#include "krylov/precond.hpp"
#include "la/blas1.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

TEST(IdentityPreconditioner, CopiesInput) {
  krylov::IdentityPreconditioner M;
  const la::Vector r{1.0, -2.0, 3.0};
  la::Vector z;
  M.apply(r, z);
  EXPECT_EQ(z, r);
}

TEST(JacobiPreconditioner, InvertsDiagonal) {
  sdcgmres::sparse::CooMatrix coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 4.0);
  coo.add(2, 2, 0.5);
  coo.add(0, 1, 7.0); // off-diagonal ignored by Jacobi
  const sdcgmres::sparse::CsrMatrix A{std::move(coo)};
  const krylov::JacobiPreconditioner M(A);
  la::Vector z;
  M.apply(la::Vector{2.0, 4.0, 1.0}, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
  EXPECT_DOUBLE_EQ(z[2], 2.0);
}

TEST(JacobiPreconditioner, RejectsZeroDiagonal) {
  sdcgmres::sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0); // row 1 has no diagonal entry
  const sdcgmres::sparse::CsrMatrix A{std::move(coo)};
  EXPECT_THROW(krylov::JacobiPreconditioner{A}, std::invalid_argument);
}

TEST(JacobiPreconditioner, RejectsRectangular) {
  sdcgmres::sparse::CooMatrix coo(2, 3);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  const sdcgmres::sparse::CsrMatrix A{std::move(coo)};
  EXPECT_THROW(krylov::JacobiPreconditioner{A}, std::invalid_argument);
}

TEST(JacobiPreconditioner, SizeMismatchThrows) {
  const auto A = gen::poisson1d(4);
  const krylov::JacobiPreconditioner M(A);
  la::Vector z;
  EXPECT_THROW(M.apply(la::Vector(5), z), std::invalid_argument);
}

TEST(NeumannPreconditioner, DegreeZeroIsScaledIdentity) {
  const auto A = gen::poisson1d(6);
  const krylov::CsrOperator op(A);
  const krylov::NeumannPolynomialPreconditioner M(op, 0, 0.2);
  la::Vector z;
  M.apply(la::ones(6), z);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(z[i], 0.2);
  }
}

TEST(NeumannPreconditioner, HigherDegreeImprovesApproximateInverse) {
  // Measure || I - M^{-1} A || action on a probe vector; more terms of the
  // Neumann series must reduce it.
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  const double omega = 0.24; // < 2 / lambda_max(Poisson) = 0.25
  const la::Vector probe = la::ones(36);
  const la::Vector ap = A.apply(probe);

  double err_prev = 1e300;
  for (const std::size_t degree : {0u, 2u, 6u}) {
    const krylov::NeumannPolynomialPreconditioner M(op, degree, omega);
    la::Vector z;
    M.apply(ap, z); // z ~ A^{-1} (A probe) = probe
    la::Vector diff = z;
    la::axpy(-1.0, probe, diff);
    const double err = la::nrm2(diff);
    EXPECT_LT(err, err_prev);
    err_prev = err;
  }
}

TEST(NeumannPreconditioner, ValidatesArguments) {
  const auto A = gen::poisson1d(4);
  const krylov::CsrOperator op(A);
  EXPECT_THROW(krylov::NeumannPolynomialPreconditioner(op, 2, 0.0),
               std::invalid_argument);
  EXPECT_THROW(krylov::NeumannPolynomialPreconditioner(op, 2, -1.0),
               std::invalid_argument);
}

TEST(FixedFlexibleAdapter, ForwardsIgnoringOuterIndex) {
  krylov::IdentityPreconditioner ident;
  krylov::FixedFlexibleAdapter M(ident);
  la::Vector z;
  M.apply(la::Vector{5.0}, 3, z);
  EXPECT_EQ(z[0], 5.0);
  M.apply(la::Vector{5.0}, 99, z);
  EXPECT_EQ(z[0], 5.0);
}

TEST(ScaledOperator, ScalesApply) {
  const auto A = gen::poisson1d(4);
  const krylov::CsrOperator op(A);
  const krylov::ScaledOperator half(op, 0.5);
  la::Vector y1(4), y2(4);
  op.apply(la::ones(4), y1);
  half.apply(la::ones(4), y2);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(y2[i], 0.5 * y1[i]);
  }
}
