#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/convection_diffusion.hpp"
#include "sparse/analysis.hpp"

namespace gen = sdcgmres::gen;
namespace sparse = sdcgmres::sparse;

TEST(ConvectionDiffusion, ZeroConvectionRecoversSymmetry) {
  const auto A = gen::convection_diffusion2d(6, 0.0, 0.0);
  EXPECT_TRUE(sparse::is_numerically_symmetric(A));
}

TEST(ConvectionDiffusion, NonzeroConvectionBreaksSymmetry) {
  const auto A = gen::convection_diffusion2d(6, 15.0, 5.0);
  EXPECT_TRUE(sparse::is_pattern_symmetric(A));
  EXPECT_FALSE(sparse::is_numerically_symmetric(A));
}

TEST(ConvectionDiffusion, UpwindingKeepsDiagonalDominance) {
  // First-order upwinding adds |c| to the diagonal; the matrix stays
  // weakly diagonally dominant for any convection strength.
  for (const double beta : {0.0, 10.0, 100.0, 1000.0}) {
    const auto A = gen::convection_diffusion2d(8, beta, beta / 2);
    EXPECT_TRUE(sparse::is_diagonally_dominant(A)) << "beta = " << beta;
  }
}

TEST(ConvectionDiffusion, StencilOrientationFollowsSign) {
  // Positive beta_x biases the west (upwind) coefficient.
  const std::size_t n = 5;
  const auto Apos = gen::convection_diffusion2d(n, 50.0, 0.0);
  const auto Aneg = gen::convection_diffusion2d(n, -50.0, 0.0);
  const std::size_t center = 2 * n + 2;
  EXPECT_LT(Apos.at(center, center - 1), Aneg.at(center, center - 1));
  EXPECT_GT(Apos.at(center, center + 1), Aneg.at(center, center + 1));
}

TEST(ConvectionDiffusion, SizeAndPattern) {
  const auto A = gen::convection_diffusion2d(7, 1.0, 1.0);
  EXPECT_EQ(A.rows(), 49u);
  EXPECT_EQ(A.nnz(), 5u * 49u - 4u * 7u);
}

TEST(ConvectionDiffusion, ZeroSizeThrows) {
  EXPECT_THROW((void)gen::convection_diffusion2d(0, 1.0, 1.0),
               std::invalid_argument);
}
