#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/random_sparse.hpp"
#include "sparse/analysis.hpp"

namespace gen = sdcgmres::gen;
namespace sparse = sdcgmres::sparse;

TEST(RandomSparse, ShapeMatchesOptions) {
  gen::RandomSparseOptions opts;
  opts.rows = 40;
  opts.cols = 30;
  const auto A = gen::random_sparse(opts);
  EXPECT_EQ(A.rows(), 40u);
  EXPECT_EQ(A.cols(), 30u);
  EXPECT_GT(A.nnz(), 0u);
}

TEST(RandomSparse, Deterministic) {
  gen::RandomSparseOptions opts;
  const auto A = gen::random_sparse(opts);
  const auto B = gen::random_sparse(opts);
  ASSERT_EQ(A.nnz(), B.nnz());
  for (std::size_t k = 0; k < A.values().size(); ++k) {
    EXPECT_EQ(A.values()[k], B.values()[k]);
  }
}

TEST(RandomSparse, DiagonalAlwaysStructurallyPresent) {
  gen::RandomSparseOptions opts;
  opts.rows = 25;
  opts.cols = 25;
  const auto A = gen::random_sparse(opts);
  for (std::size_t i = 0; i < A.rows(); ++i) {
    const auto cols = A.row_cols(i);
    bool has_diag = false;
    for (const std::size_t j : cols) {
      if (j == i) has_diag = true;
    }
    EXPECT_TRUE(has_diag) << "row " << i;
  }
}

TEST(RandomSparse, SymmetricOptionProducesSymmetry) {
  gen::RandomSparseOptions opts;
  opts.rows = 30;
  opts.cols = 30;
  opts.symmetric = true;
  const auto A = gen::random_sparse(opts);
  EXPECT_TRUE(sparse::is_numerically_symmetric(A, 1e-15));
}

TEST(RandomSparse, SymmetricRequiresSquare) {
  gen::RandomSparseOptions opts;
  opts.rows = 4;
  opts.cols = 5;
  opts.symmetric = true;
  EXPECT_THROW((void)gen::random_sparse(opts), std::invalid_argument);
}

TEST(RandomSparse, EmptyDimensionsThrow) {
  gen::RandomSparseOptions opts;
  opts.rows = 0;
  EXPECT_THROW((void)gen::random_sparse(opts), std::invalid_argument);
}

TEST(RandomDiagDominant, IsDiagonallyDominant) {
  const auto A = gen::random_diag_dominant(60);
  EXPECT_TRUE(sparse::is_diagonally_dominant(A));
}

TEST(RandomSpd, IsSymmetricAndPositiveDefinite) {
  const auto A = gen::random_spd(60);
  EXPECT_TRUE(sparse::is_numerically_symmetric(A, 1e-15));
  EXPECT_TRUE(sparse::probe_positive_definite(A));
}

TEST(RandomSpd, DifferentSeedsDiffer) {
  const auto A = gen::random_spd(20, 1);
  const auto B = gen::random_spd(20, 2);
  bool differ = A.nnz() != B.nnz();
  if (!differ) {
    for (std::size_t k = 0; k < A.values().size(); ++k) {
      if (A.values()[k] != B.values()[k]) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}
