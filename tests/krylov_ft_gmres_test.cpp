#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/hooks.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"

namespace krylov = sdcgmres::krylov;
namespace sdc = sdcgmres::sdc;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

double explicit_residual(const sdcgmres::sparse::CsrMatrix& A,
                         const la::Vector& b, const la::Vector& x) {
  la::Vector r(A.rows());
  A.spmv(x, r);
  la::waxpby(1.0, b, -1.0, r, r);
  return la::nrm2(r);
}

} // namespace

TEST(FtGmres, DefaultOptionsMatchPaperInnerSolve) {
  const krylov::FtGmresOptions opts;
  EXPECT_EQ(opts.inner.max_iters, 25u);
  EXPECT_EQ(opts.inner.tol, 0.0);
}

TEST(FtGmres, SolvesPoissonFailureFree) {
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(A.rows());
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  const auto res = krylov::ft_gmres(A, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-8 * la::nrm2(b) * 1.01);
}

TEST(FtGmres, SolvesNonsymmetricFailureFree) {
  const auto A = gen::convection_diffusion2d(9, 25.0, -10.0);
  const la::Vector b = la::ones(A.rows());
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  const auto res = krylov::ft_gmres(A, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
}

TEST(FtGmres, InnerSolveBookkeepingIsConsistent) {
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  krylov::FtGmresOptions opts;
  opts.inner.max_iters = 10;
  const auto res = krylov::ft_gmres(A, b, opts);
  ASSERT_EQ(res.inner_solves.size(), res.outer_iterations);
  std::size_t total = 0;
  for (std::size_t j = 0; j < res.inner_solves.size(); ++j) {
    EXPECT_EQ(res.inner_solves[j].outer_index, j);
    EXPECT_EQ(res.inner_solves[j].iterations, 10u);
    total += res.inner_solves[j].iterations;
  }
  EXPECT_EQ(res.total_inner_iterations, total);
}

TEST(FtGmres, FewerOuterIterationsThanUnpreconditionedGmres) {
  // The inner solve is a powerful preconditioner: the outer count must be
  // far below plain GMRES's iteration count.
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(100);
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  const auto nested = krylov::ft_gmres(A, b, opts);

  krylov::GmresOptions plain;
  plain.max_iters = 500;
  plain.tol = 1e-8;
  const auto flat = krylov::gmres(A, b, plain);

  ASSERT_EQ(nested.status, krylov::SolveStatus::Converged);
  ASSERT_EQ(flat.status, krylov::SolveStatus::Converged);
  EXPECT_LT(nested.outer_iterations, flat.iterations / 2);
}

TEST(FtGmres, LongerInnerSolvesReduceOuterIterations) {
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(100);
  krylov::FtGmresOptions weak;
  weak.inner.max_iters = 5;
  krylov::FtGmresOptions strong;
  strong.inner.max_iters = 40;
  const auto res_weak = krylov::ft_gmres(A, b, weak);
  const auto res_strong = krylov::ft_gmres(A, b, strong);
  ASSERT_EQ(res_weak.status, krylov::SolveStatus::Converged);
  ASSERT_EQ(res_strong.status, krylov::SolveStatus::Converged);
  EXPECT_LT(res_strong.outer_iterations, res_weak.outer_iterations);
}

TEST(FtGmres, HookObservesEveryInnerIteration) {
  class CountingHook final : public krylov::ArnoldiHook {
  public:
    std::size_t solves = 0;
    std::size_t iterations = 0;
    void on_solve_begin(std::size_t) override { ++solves; }
    void on_iteration_begin(const krylov::ArnoldiContext&) override {
      ++iterations;
    }
  };
  const auto A = gen::poisson2d(8);
  krylov::FtGmresOptions opts;
  opts.inner.max_iters = 7;
  CountingHook hook;
  const auto res = krylov::ft_gmres(A, la::ones(64), opts, &hook);
  EXPECT_EQ(hook.solves, res.outer_iterations);
  EXPECT_EQ(hook.iterations, res.total_inner_iterations);
}

TEST(FtGmres, RobustFirstInnerHealsModerateFaultInFirstSolve) {
  // Section VII-E-1 implemented: CGS2 in the first inner solve restores
  // the correct total coefficient after a single moderate multiplicative
  // fault, so the faulty run matches the failure-free outer count.
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  opts.robust_first_inner = true;
  const auto baseline = krylov::ft_gmres(A, b, opts);
  ASSERT_EQ(baseline.status, krylov::SolveStatus::Converged);

  for (std::size_t site : {0u, 3u, 11u, 24u}) {
    sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
        site, sdc::MgsPosition::First,
        sdc::fault_classes::slightly_smaller()));
    const auto res = krylov::ft_gmres(A, b, opts, &campaign);
    ASSERT_TRUE(campaign.fired());
    EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
    EXPECT_EQ(res.outer_iterations, baseline.outer_iterations)
        << "site " << site;
  }
}

TEST(FtGmres, OperatorOverloadAgreesWithCsrOverload) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  krylov::FtGmresOptions opts;
  const auto r1 = krylov::ft_gmres(A, la::ones(36), opts);
  const auto r2 = krylov::ft_gmres(op, la::ones(36), opts);
  EXPECT_EQ(r1.outer_iterations, r2.outer_iterations);
  EXPECT_EQ(r1.status, r2.status);
}

// ---------------------------------------------------------------------------
// Solve guards and detector-triggered recovery.
// ---------------------------------------------------------------------------

TEST(FtGmresGuards, DeadlineGuardStopsTheSolve) {
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(A.rows());
  krylov::FtGmresOptions opts;
  // An unreachable tolerance with a generous (but allocatable: the outer
  // Hessenberg is max_outer^2 doubles) iteration cap, and a deadline
  // shorter than any single outer iteration: the guard must fire at the
  // first end-of-iteration check, long before the cap.  The inner effort
  // is kept low so the inner solve stays inexact -- a near-exact inner
  // solve triggers outer happy breakdown on iteration one, which returns
  // before the deadline is ever consulted.
  opts.outer.tol = 1e-30;
  opts.outer.max_outer = 500;
  opts.inner.max_iters = 5;
  opts.outer.deadline_seconds = 1e-9;
  const auto res = krylov::ft_gmres(A, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::DeadlineExceeded);
  EXPECT_GE(res.outer_iterations, 1u); // at least one full outer step ran
}

TEST(FtGmresGuards, ZeroDeadlineMeansNoGuard) {
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  opts.outer.deadline_seconds = 0.0;
  const auto res = krylov::ft_gmres(A, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
}

TEST(FtGmresGuards, DivergenceGuardStopsNaNPoisonedInnerSolve) {
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  opts.inner.divergence_factor = 10.0;
  // Poison one Hessenberg coefficient with NaN: the projected inner
  // least-squares estimate goes non-finite, which the guard converts into
  // a clean Diverged stop (dropping the poisoned column) instead of
  // letting NaN propagate through the inner iterate.
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      3, sdc::MgsPosition::First,
      sdc::FaultModel::set_value(std::numeric_limits<double>::quiet_NaN())));
  const auto res = krylov::ft_gmres(A, b, opts, &campaign);
  ASSERT_TRUE(campaign.fired());
  std::size_t diverged = 0;
  for (const auto& rec : res.inner_solves) {
    if (rec.status == krylov::SolveStatus::Diverged) ++diverged;
  }
  EXPECT_EQ(diverged, 1u);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged); // outer recovers
}

TEST(FtGmresGuards, RecoverySettingAloneIsBitwiseInert) {
  // The determinism contract: when no detector fires, every recovery mode
  // produces the exact run of the unguarded solver.
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  krylov::FtGmresOptions plain;
  plain.outer.tol = 1e-8;
  const auto reference = krylov::ft_gmres(A, b, plain);
  for (const krylov::InnerRecovery mode :
       {krylov::InnerRecovery::RetryReliable,
        krylov::InnerRecovery::RestartOuter}) {
    krylov::FtGmresOptions opts = plain;
    opts.recovery = mode;
    const auto res = krylov::ft_gmres(A, b, opts);
    EXPECT_EQ(res.status, reference.status);
    EXPECT_EQ(res.outer_iterations, reference.outer_iterations);
    EXPECT_EQ(res.x, reference.x); // bitwise: identical operation sequence
    EXPECT_EQ(res.reliable_retries, 0u);
    EXPECT_EQ(res.outer_restarts, 0u);
  }
}

TEST(FtGmresRecovery, RetryReliableMatchesTheFailureFreeRun) {
  // A detected class-1 fault answered with retry_reliable re-runs the
  // flagged inner solve with injection disabled, so the outer iteration
  // count must equal the failure-free baseline at EVERY site.  This
  // config runs 7 outer x 5 inner iterations, so the sites below span
  // several distinct inner solves.
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(100);
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  opts.inner.max_iters = 5;
  const auto baseline = krylov::ft_gmres(A, b, opts);
  ASSERT_EQ(baseline.status, krylov::SolveStatus::Converged);

  opts.recovery = krylov::InnerRecovery::RetryReliable;
  const double bound = A.frobenius_norm();
  for (std::size_t site : {0u, 7u, 15u, 23u}) {
    sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
        site, sdc::MgsPosition::First, sdc::fault_classes::very_large()));
    sdc::HessenbergBoundDetector detector(
        bound, sdc::DetectorResponse::RetryReliable);
    krylov::HookChain chain({&campaign, &detector});
    const auto res = krylov::ft_gmres(A, b, opts, &chain);
    ASSERT_TRUE(campaign.fired()) << "site " << site;
    ASSERT_TRUE(detector.triggered()) << "site " << site;
    EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
    EXPECT_EQ(res.reliable_retries, 1u);
    EXPECT_EQ(res.outer_iterations, baseline.outer_iterations)
        << "site " << site;
    EXPECT_EQ(res.x, baseline.x) << "site " << site; // bitwise identical
  }
}

TEST(FtGmresRecovery, RetryRecordCarriesTheCombinedEffort) {
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(100);
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  opts.inner.max_iters = 5;
  opts.recovery = krylov::InnerRecovery::RetryReliable;
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      4, sdc::MgsPosition::First, sdc::fault_classes::very_large()));
  sdc::HessenbergBoundDetector detector(
      A.frobenius_norm(), sdc::DetectorResponse::RetryReliable);
  krylov::HookChain chain({&campaign, &detector});
  const auto res = krylov::ft_gmres(A, b, opts, &chain);
  ASSERT_TRUE(detector.triggered());
  const auto& rec = res.inner_solves.at(0); // site 4 is in inner solve 0
  EXPECT_EQ(rec.reliable_retries, 1u);
  // iterations/operator_applies sum both attempts: the aborted one plus
  // the full reliable re-run.
  EXPECT_GT(rec.iterations, opts.inner.max_iters);
}

TEST(FtGmresRecovery, RestartOuterDiscardsThePoisonedBasisAndConverges) {
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(100);
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  opts.inner.max_iters = 5;
  const auto baseline = krylov::ft_gmres(A, b, opts);

  opts.recovery = krylov::InnerRecovery::RestartOuter;
  const double bound = A.frobenius_norm();
  for (std::size_t site : {0u, 7u, 15u}) {
    sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
        site, sdc::MgsPosition::First, sdc::fault_classes::very_large()));
    sdc::HessenbergBoundDetector detector(
        bound, sdc::DetectorResponse::RestartOuter);
    krylov::HookChain chain({&campaign, &detector});
    const auto res = krylov::ft_gmres(A, b, opts, &chain);
    ASSERT_TRUE(detector.triggered()) << "site " << site;
    EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
    EXPECT_EQ(res.outer_restarts, 1u);
    // A restart rebuilds the basis from the current iterate: convergence
    // survives, with at most a few extra outer iterations.
    EXPECT_LE(res.outer_iterations, baseline.outer_iterations + 4)
        << "site " << site;
    const bool flagged = [&] {
      for (const auto& rec : res.inner_solves) {
        if (rec.triggered_outer_restart) return true;
      }
      return false;
    }();
    EXPECT_TRUE(flagged) << "site " << site;
  }
}

TEST(FtGmresRecovery, InnerRecoveryForMapsEveryDetectorResponse) {
  EXPECT_EQ(sdc::inner_recovery_for(sdc::DetectorResponse::RecordOnly),
            krylov::InnerRecovery::None);
  EXPECT_EQ(sdc::inner_recovery_for(sdc::DetectorResponse::AbortSolve),
            krylov::InnerRecovery::None);
  EXPECT_EQ(sdc::inner_recovery_for(sdc::DetectorResponse::RetryReliable),
            krylov::InnerRecovery::RetryReliable);
  EXPECT_EQ(sdc::inner_recovery_for(sdc::DetectorResponse::RestartOuter),
            krylov::InnerRecovery::RestartOuter);
}
