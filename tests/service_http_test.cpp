#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include "service/http.hpp"

namespace service = sdcgmres::service;

namespace {

/// Minimal raw-socket HTTP client: one request, whole response back.
std::string raw_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + off, request.size() - off, MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get(std::uint16_t port, const std::string& target) {
  return raw_request(port, "GET " + target +
                               " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string post(std::uint16_t port, const std::string& target,
                 const std::string& body) {
  return raw_request(port, "POST " + target + " HTTP/1.1\r\nHost: localhost" +
                               "\r\nContent-Length: " +
                               std::to_string(body.size()) + "\r\n\r\n" +
                               body);
}

} // namespace

TEST(HttpServer, EphemeralPortRoundTripsGetAndPost) {
  service::HttpServer server(0, [](const service::HttpRequest& request) {
    service::HttpResponse response;
    response.body = request.method + " " + request.target + " [" +
                    request.body + "]";
    return response;
  });
  EXPECT_GT(server.port(), 0) << "port 0 must resolve to a real port";
  server.start();

  const std::string got = get(server.port(), "/stats");
  EXPECT_NE(got.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(got.find("GET /stats []"), std::string::npos);
  EXPECT_NE(got.find("Content-Length:"), std::string::npos);

  const std::string posted =
      post(server.port(), "/jobs", "matrix=poisson n=10");
  EXPECT_NE(posted.find("POST /jobs [matrix=poisson n=10]"),
            std::string::npos)
      << "the Content-Length body must reach the handler intact";
  server.stop();
}

TEST(HttpServer, StatusCodesAndReasonPhrases) {
  service::HttpServer server(0, [](const service::HttpRequest& request) {
    service::HttpResponse response;
    if (request.target == "/missing") response.status = 404;
    if (request.target == "/conflict") response.status = 409;
    if (request.target == "/created") response.status = 201;
    return response;
  });
  server.start();
  EXPECT_NE(get(server.port(), "/missing").find("404 Not Found"),
            std::string::npos);
  EXPECT_NE(get(server.port(), "/conflict").find("409 Conflict"),
            std::string::npos);
  EXPECT_NE(get(server.port(), "/created").find("201 Created"),
            std::string::npos);
  server.stop();
}

TEST(HttpServer, HandlerExceptionBecomes500NotACrash) {
  service::HttpServer server(0, [](const service::HttpRequest&)
                                    -> service::HttpResponse {
    throw std::runtime_error("boom");
  });
  server.start();
  const std::string got = get(server.port(), "/");
  EXPECT_NE(got.find("500 Internal Server Error"), std::string::npos);
  EXPECT_NE(got.find("boom"), std::string::npos);
  // The server survived: a second request still answers.
  EXPECT_NE(get(server.port(), "/").find("500"), std::string::npos);
  server.stop();
}

TEST(HttpServer, MalformedRequestLineIs400) {
  service::HttpServer server(0, [](const service::HttpRequest&) {
    return service::HttpResponse{};
  });
  server.start();
  const std::string got = raw_request(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(got.find("400 Bad Request"), std::string::npos);
  server.stop();
}

TEST(HttpServer, StopIsIdempotentAndUnbindsThePort) {
  auto server = std::make_unique<service::HttpServer>(
      0, [](const service::HttpRequest&) { return service::HttpResponse{}; });
  const std::uint16_t port = server->port();
  server->start();
  server->stop();
  server->stop(); // idempotent
  server.reset();
  // The port is free again: a new server can bind it immediately.
  service::HttpServer again(port, [](const service::HttpRequest&) {
    return service::HttpResponse{};
  });
  EXPECT_EQ(again.port(), port);
}
