#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "gen/poisson.hpp"
#include "gen/random_sparse.hpp"
#include "la/blas1.hpp"
#include "la/krylov_basis.hpp"
#include "sparse/csr.hpp"
#include "sparse/norms.hpp"

namespace sparse = sdcgmres::sparse;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

/// Deterministic, non-trivial block of b test vectors.
la::KrylovBasis test_block(std::size_t n, std::size_t b, double phase) {
  la::KrylovBasis x(n, b);
  for (std::size_t c = 0; c < b; ++c) {
    std::span<double> col = x.append();
    for (std::size_t i = 0; i < n; ++i) {
      col[i] = std::sin(0.7 * static_cast<double>(i + 1) +
                        phase * static_cast<double>(c + 1)) +
               0.25 * static_cast<double>(c);
    }
  }
  return x;
}

void expect_spmm_matches_spmv(const sparse::CsrMatrix& A, std::size_t b) {
  const la::KrylovBasis x = test_block(A.cols(), b, 1.3);
  la::KrylovBasis y(A.rows(), b);
  for (std::size_t c = 0; c < b; ++c) (void)y.append();
  A.spmm(x.view(), y);

  la::Vector ref(A.rows());
  for (std::size_t c = 0; c < b; ++c) {
    A.spmv(x.col(c), ref);
    const std::span<const double> got = y.col(c);
    for (std::size_t i = 0; i < A.rows(); ++i) {
      // Bitwise: each output column accumulates in exactly spmv's order.
      EXPECT_EQ(got[i], ref[i]) << "column " << c << ", row " << i;
    }
  }
}

} // namespace

TEST(Spmm, BitwiseMatchesColumnwiseSpmvPoisson) {
  const auto A = gen::poisson2d(17); // n = 289
  for (const std::size_t b : {1u, 2u, 3u, 4u, 5u, 8u, 11u}) {
    expect_spmm_matches_spmv(A, b);
  }
}

TEST(Spmm, BitwiseMatchesColumnwiseSpmvRandomRectangular) {
  gen::RandomSparseOptions opts;
  opts.rows = 120;
  opts.cols = 75;
  opts.nnz_per_row = 6;
  opts.seed = 7;
  const auto A = gen::random_sparse(opts);
  ASSERT_NE(A.rows(), A.cols());
  expect_spmm_matches_spmv(A, 6);
}

TEST(Spmm, RawPointerCoreHonorsLeadingDimensions) {
  const auto A = gen::poisson2d(9); // n = 81
  const std::size_t n = A.rows();
  const std::size_t b = 3;
  const std::size_t ldx = n + 5;
  const std::size_t ldy = n + 9;
  std::vector<double> x(ldx * b, -777.0);
  std::vector<double> y(ldy * b, -777.0);
  for (std::size_t c = 0; c < b; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      x[c * ldx + i] = static_cast<double>(i % 13) - 0.5 * static_cast<double>(c);
    }
  }
  A.spmm(b, x.data(), ldx, y.data(), ldy);

  la::Vector ref(n);
  for (std::size_t c = 0; c < b; ++c) {
    A.spmv(std::span<const double>(x.data() + c * ldx, n), ref);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y[c * ldy + i], ref[i]);
    }
    // Padding between columns is untouched.
    for (std::size_t i = n; i < ldy; ++i) {
      EXPECT_EQ(y[c * ldy + i], -777.0);
    }
  }
}

TEST(Spmm, RejectsShapeMismatches) {
  const auto A = gen::poisson2d(5);
  la::KrylovBasis bad_rows(A.cols() + 1, 2);
  (void)bad_rows.append();
  (void)bad_rows.append();
  la::KrylovBasis y(A.rows(), 2);
  (void)y.append();
  (void)y.append();
  EXPECT_THROW(A.spmm(bad_rows.view(), y), std::invalid_argument);

  la::KrylovBasis x = test_block(A.cols(), 2, 0.3);
  la::KrylovBasis y_short(A.rows(), 2);
  (void)y_short.append(); // one column only: count mismatch
  EXPECT_THROW(A.spmm(x.view(), y_short), std::invalid_argument);
}

TEST(SpmvSpanCore, RejectsWrongOutputSize) {
  const auto A = gen::poisson2d(4);
  const la::Vector x = la::ones(16);
  std::vector<double> y(15, 0.0);
  EXPECT_THROW(A.spmv(std::span<const double>(x.span()),
                      std::span<double>(y.data(), y.size())),
               std::invalid_argument);
}

TEST(BatchedTwoNorm, AgreesWithScalarPowerIteration) {
  const auto A = gen::poisson2d(12);
  const auto scalar = sparse::estimate_two_norm(A);
  const auto batch = sparse::estimate_two_norm_batch(A, 4);
  ASSERT_TRUE(scalar.converged);
  ASSERT_TRUE(batch.converged);
  EXPECT_NEAR(batch.value, scalar.value, 1e-6 * scalar.value);
  // The batch estimate is still a from-below sigma_max estimate.
  EXPECT_LE(batch.value, A.frobenius_norm() * (1.0 + 1e-12));
}

TEST(BatchedTwoNorm, BlockOneMatchesScalarEstimate) {
  const auto A = gen::poisson2d(8);
  const auto scalar = sparse::estimate_two_norm(A);
  const auto batch = sparse::estimate_two_norm_batch(A, 1);
  EXPECT_NEAR(batch.value, scalar.value, 1e-8 * scalar.value);
}

TEST(Spmm, ZeroColumnBlockIsANoOp) {
  const auto A = gen::poisson2d(6); // n = 36
  // Raw core: must return before any pointer arithmetic (null operands
  // are exactly what an empty view carries).
  A.spmm(/*ncols=*/0, /*x=*/nullptr, /*ldx=*/0, /*y=*/nullptr, /*ldy=*/0);

  // View overload: an empty operand against an empty result is legal and
  // does nothing (a batch whose instances all dropped out).
  la::KrylovBasis x(A.cols(), 4);
  la::KrylovBasis y(A.rows(), 4);
  A.spmm(x.view(0), y);
  EXPECT_EQ(y.cols(), 0u);

  // A default-constructed (null) view is the degenerate empty block.
  A.spmm(la::BasisView(), y);
}

TEST(Spmm, ZeroColumnOperandAgainstNonEmptyResultStillThrows) {
  const auto A = gen::poisson2d(6);
  la::KrylovBasis x(A.cols(), 4);
  la::KrylovBasis y(A.rows(), 4);
  (void)y.append();
  EXPECT_THROW(A.spmm(x.view(0), y), std::invalid_argument);
}

TEST(BatchedTwoNorm, ZeroBlockThrows) {
  const auto A = gen::poisson2d(6);
  EXPECT_THROW((void)sparse::estimate_two_norm_batch(A, 0),
               std::invalid_argument);
}

#ifdef _OPENMP
#include <omp.h>

TEST(BatchedTwoNorm, FusedTransposeKeepsEstimateThreadInvariant) {
  // The calibration's fused forward/transpose products are bitwise
  // identical to per-replica spmv/spmv_transpose at any thread count, so
  // the replica iterates -- and hence the returned estimate -- must be
  // the same DOUBLE, not merely close, however many threads run.
  const auto A = gen::random_diag_dominant(4000, 0x5DCu); // nnz > 16384
  ASSERT_GT(A.nnz(), 16384u);
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const auto serial = sparse::estimate_two_norm_batch(A, 4);
  omp_set_num_threads(saved > 1 ? saved : 4);
  const auto threaded = sparse::estimate_two_norm_batch(A, 4);
  omp_set_num_threads(saved);
  EXPECT_EQ(threaded.value, serial.value);
  EXPECT_EQ(threaded.iterations, serial.iterations);
  EXPECT_EQ(threaded.converged, serial.converged);
}
#endif
