#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "krylov/arnoldi.hpp"
#include "krylov/gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/abft.hpp"
#include "sdc/injection.hpp"

namespace sdc = sdcgmres::sdc;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

la::Vector generic_vector(std::size_t n) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + 0.3) + 0.01;
  }
  return v;
}

} // namespace

TEST(Abft, ZeroPeriodThrows) {
  const auto A = gen::poisson2d(4);
  const krylov::CsrOperator op(A);
  sdc::AbftOptions opts;
  opts.check_period = 0;
  EXPECT_THROW(sdc::AbftMonitor(op, opts), std::invalid_argument);
}

TEST(Abft, NoFalsePositivesOnCleanRun) {
  const auto A = gen::convection_diffusion2d(8, 20.0, -5.0);
  const krylov::CsrOperator op(A);
  sdc::AbftMonitor monitor(op);
  (void)krylov::arnoldi(op, generic_vector(64), 15,
                        krylov::Orthogonalization::MGS, &monitor);
  EXPECT_EQ(monitor.checks(), 15u);
  EXPECT_EQ(monitor.detections(), 0u);
  EXPECT_LT(monitor.worst_relation_defect(), 1e-10);
}

TEST(Abft, CheckPeriodIsRespected) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  sdc::AbftOptions opts;
  opts.check_period = 4;
  sdc::AbftMonitor monitor(op, opts);
  (void)krylov::arnoldi(op, generic_vector(64), 12,
                        krylov::Orthogonalization::MGS, &monitor);
  EXPECT_EQ(monitor.checks(), 3u); // iterations 0, 4, 8
  EXPECT_EQ(monitor.extra_spmv(), 3u);
}

TEST(Abft, DetectsAllThreeFaultClassesOnNonzeroCoefficient) {
  // The key coverage difference vs the bound detector: the orthogonality
  // check sees the un-removed basis component, so even the *undetectable*
  // (by magnitude) class-2 and class-3 faults are caught.
  const auto A = gen::convection_diffusion2d(8, 20.0, -5.0);
  const krylov::CsrOperator op(A);
  for (const auto model : {sdc::fault_classes::very_large(),
                           sdc::fault_classes::slightly_smaller(),
                           sdc::fault_classes::nearly_zero()}) {
    sdc::FaultCampaign campaign(
        sdc::InjectionPlan::hessenberg(2, sdc::MgsPosition::Last, model));
    sdc::AbftMonitor monitor(op);
    krylov::HookChain chain({&campaign, &monitor});
    (void)krylov::arnoldi(op, generic_vector(64), 8,
                          krylov::Orthogonalization::MGS, &chain);
    ASSERT_TRUE(campaign.fired()) << sdc::to_string(model);
    EXPECT_TRUE(monitor.triggered()) << sdc::to_string(model);
  }
}

TEST(Abft, MgsCoefficientFaultIsSelfConsistentWithArnoldiRelation) {
  // Documented property: the corrupted coefficient is both stored and
  // applied, so the relation check alone stays clean -- detection comes
  // from the orthogonality check.
  const auto A = gen::convection_diffusion2d(8, 20.0, -5.0);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      2, sdc::MgsPosition::Last, sdc::fault_classes::slightly_smaller()));
  sdc::AbftOptions opts;
  opts.ortho_tol = 1e300; // disable the orthonormality check
  sdc::AbftMonitor monitor(op, opts);
  krylov::HookChain chain({&campaign, &monitor});
  (void)krylov::arnoldi(op, generic_vector(64), 8,
                        krylov::Orthogonalization::MGS, &chain);
  ASSERT_TRUE(campaign.fired());
  EXPECT_FALSE(monitor.triggered());
  EXPECT_LT(monitor.worst_relation_defect(), 1e-10);
}

TEST(Abft, DetectsSubdiagonalFaultViaNormality) {
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  sdc::InjectionPlan plan;
  plan.target = sdc::InjectionTarget::SubdiagonalNorm;
  plan.aggregate_iteration = 3;
  plan.model = sdc::FaultModel::scale(2.0); // modest -- bound can't see it
  sdc::FaultCampaign campaign(plan);
  sdc::AbftMonitor monitor(op);
  krylov::HookChain chain({&campaign, &monitor});
  (void)krylov::arnoldi(op, generic_vector(64), 8,
                        krylov::Orthogonalization::MGS, &chain);
  ASSERT_TRUE(campaign.fired());
  EXPECT_TRUE(monitor.triggered());
}

TEST(Abft, AbortResponseStopsGmres) {
  const auto A = gen::convection_diffusion2d(8, 20.0, -5.0);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      4, sdc::MgsPosition::Last, sdc::fault_classes::slightly_smaller()));
  sdc::AbftOptions opts;
  opts.response = sdc::DetectorResponse::AbortSolve;
  sdc::AbftMonitor monitor(op, opts);
  krylov::HookChain chain({&campaign, &monitor});
  krylov::GmresOptions gopts;
  gopts.max_iters = 20;
  gopts.tol = 0.0;
  const auto res =
      krylov::gmres(op, la::ones(64), la::zeros(64), gopts, &chain, 0);
  EXPECT_EQ(res.status, krylov::SolveStatus::AbortedByDetector);
  // The tainted column (iteration 4) is dropped: only 4 columns used.
  EXPECT_EQ(res.iterations, 4u);
  EXPECT_TRUE(la::all_finite(res.x));
}

TEST(Abft, ResetClearsState) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::AbftMonitor monitor(op);
  (void)krylov::arnoldi(op, generic_vector(36), 5,
                        krylov::Orthogonalization::MGS, &monitor);
  ASSERT_GT(monitor.checks(), 0u);
  monitor.reset();
  EXPECT_EQ(monitor.checks(), 0u);
  EXPECT_EQ(monitor.extra_spmv(), 0u);
  EXPECT_EQ(monitor.worst_relation_defect(), 0.0);
}
