#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/gmres.hpp"
#include "krylov/ilu0.hpp"
#include "krylov/workspace.hpp"
#include "la/blas1.hpp"
#include "la/workspace.hpp"
#include "sdc/injection.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;
namespace sdc = sdcgmres::sdc;

namespace {

void expect_same_vector(const la::Vector& a, const la::Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "entry " << i;
  }
}

} // namespace

TEST(SolverWorkspace, ReserveIsMonotoneAndShapesArenas) {
  la::SolverWorkspace ws;
  ws.reserve(100, 30);
  EXPECT_EQ(ws.rows(), 100u);
  EXPECT_EQ(ws.max_dim(), 30u);
  EXPECT_EQ(ws.basis().rows(), 100u);
  EXPECT_EQ(ws.basis().capacity(), 31u);
  EXPECT_EQ(ws.directions().capacity(), 30u);
  EXPECT_GE(ws.h_column().size(), 32u);
  for (std::size_t s = 0; s < la::SolverWorkspace::kScratchSlots; ++s) {
    EXPECT_EQ(ws.scratch(s).size(), 100u);
  }

  const double* before = ws.basis().data();
  ws.reserve(100, 20); // fits: no reshape
  EXPECT_EQ(ws.basis().data(), before);
  EXPECT_EQ(ws.max_dim(), 30u);

  ws.reserve(100, 50); // column growth
  EXPECT_EQ(ws.max_dim(), 50u);
  ws.reserve(64, 10); // row change reshapes to the new row count
  EXPECT_EQ(ws.rows(), 64u);
  EXPECT_EQ(ws.basis().rows(), 64u);
}

TEST(Workspace, RepeatedGmresSolvesMatchFreshState) {
  // Two consecutive solves from ONE workspace must equal two fresh-state
  // solves bitwise: no state may leak between checkouts.
  const auto A = gen::convection_diffusion2d(12, 8.0, 4.0);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  const la::Vector x0 = la::zeros(A.rows());
  krylov::GmresOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 200;
  opts.restart = 30; // exercise the per-cycle reset path too

  const auto fresh1 = krylov::gmres(op, b, x0, opts);
  const auto fresh2 = krylov::gmres(op, b, x0, opts);

  krylov::KrylovWorkspace ws;
  const auto reused1 = krylov::gmres(op, b, x0, opts, nullptr, 0, &ws);
  const auto reused2 = krylov::gmres(op, b, x0, opts, nullptr, 0, &ws);

  ASSERT_EQ(fresh1.status, krylov::SolveStatus::Converged);
  EXPECT_EQ(reused1.status, fresh1.status);
  EXPECT_EQ(reused2.status, fresh2.status);
  EXPECT_EQ(reused1.iterations, fresh1.iterations);
  EXPECT_EQ(reused2.iterations, fresh2.iterations);
  EXPECT_EQ(reused1.residual_norm, fresh1.residual_norm);
  EXPECT_EQ(reused2.residual_norm, fresh2.residual_norm);
  expect_same_vector(reused1.x, fresh1.x);
  expect_same_vector(reused2.x, fresh2.x);
  EXPECT_EQ(reused1.residual_history, fresh1.residual_history);
  EXPECT_EQ(reused2.residual_history, fresh2.residual_history);
}

TEST(Workspace, RepeatedFgmresSolvesMatchFreshState) {
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  const la::Vector x0 = la::zeros(A.rows());
  krylov::Ilu0Preconditioner ilu(A);
  krylov::FixedFlexibleAdapter M(ilu);
  krylov::FgmresOptions opts;
  opts.tol = 1e-10;
  opts.max_outer = 80;

  const auto fresh1 = krylov::fgmres(op, b, x0, opts, M);
  const auto fresh2 = krylov::fgmres(op, b, x0, opts, M);

  krylov::KrylovWorkspace ws;
  const auto reused1 = krylov::fgmres(op, b, x0, opts, M, &ws);
  const auto reused2 = krylov::fgmres(op, b, x0, opts, M, &ws);

  ASSERT_EQ(fresh1.status, krylov::SolveStatus::Converged);
  EXPECT_EQ(reused1.status, fresh1.status);
  EXPECT_EQ(reused2.status, fresh2.status);
  EXPECT_EQ(reused1.outer_iterations, fresh1.outer_iterations);
  EXPECT_EQ(reused2.outer_iterations, fresh2.outer_iterations);
  EXPECT_EQ(reused1.residual_norm, fresh1.residual_norm);
  EXPECT_EQ(reused2.residual_norm, fresh2.residual_norm);
  expect_same_vector(reused1.x, fresh1.x);
  expect_same_vector(reused2.x, fresh2.x);
}

TEST(Workspace, RepeatedFtGmresSolvesMatchFreshState) {
  // The full nested solver, with a fault campaign attached on the second
  // solve of each pair so the workspace also survives faulty solves.
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(A.rows());
  krylov::FtGmresOptions opts;
  opts.inner.max_iters = 10;
  opts.outer.tol = 1e-8;
  opts.outer.max_outer = 100;

  const auto make_campaign = [] {
    return sdc::FaultCampaign(sdc::InjectionPlan::hessenberg(
        3, sdc::MgsPosition::First, sdc::FaultModel::scale(1e150)));
  };

  const auto fresh_clean = krylov::ft_gmres(A, b, opts);
  auto campaign1 = make_campaign();
  const auto fresh_faulty = krylov::ft_gmres(A, b, opts, &campaign1);

  krylov::FtGmresWorkspace ws;
  const auto reused_clean = krylov::ft_gmres(A, b, opts, nullptr, &ws);
  auto campaign2 = make_campaign();
  const auto reused_faulty = krylov::ft_gmres(A, b, opts, &campaign2, &ws);

  EXPECT_EQ(reused_clean.status, fresh_clean.status);
  EXPECT_EQ(reused_clean.outer_iterations, fresh_clean.outer_iterations);
  EXPECT_EQ(reused_clean.total_inner_iterations,
            fresh_clean.total_inner_iterations);
  EXPECT_EQ(reused_clean.residual_norm, fresh_clean.residual_norm);
  expect_same_vector(reused_clean.x, fresh_clean.x);

  ASSERT_TRUE(campaign1.fired());
  ASSERT_TRUE(campaign2.fired());
  EXPECT_EQ(reused_faulty.status, fresh_faulty.status);
  EXPECT_EQ(reused_faulty.outer_iterations, fresh_faulty.outer_iterations);
  EXPECT_EQ(reused_faulty.residual_norm, fresh_faulty.residual_norm);
  expect_same_vector(reused_faulty.x, fresh_faulty.x);
}

TEST(Workspace, SurvivesShapeChangesBetweenSolves) {
  // A workspace reused across different problem sizes must reshape and
  // still produce fresh-state results.
  krylov::KrylovWorkspace ws;
  krylov::GmresOptions opts;
  opts.tol = 1e-10;

  for (const std::size_t n : {6u, 12u, 9u}) {
    const auto A = gen::poisson2d(n);
    const krylov::CsrOperator op(A);
    const la::Vector b = la::ones(A.rows());
    const la::Vector x0 = la::zeros(A.rows());
    const auto fresh = krylov::gmres(op, b, x0, opts);
    const auto reused = krylov::gmres(op, b, x0, opts, nullptr, 0, &ws);
    EXPECT_EQ(reused.iterations, fresh.iterations);
    expect_same_vector(reused.x, fresh.x);
  }
}

TEST(Workspace, InPlaceSpanSolveMatchesVectorApi) {
  const auto A = gen::poisson2d(9);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  krylov::GmresOptions opts;
  opts.tol = 1e-10;

  const auto byvalue = krylov::gmres(op, b, la::zeros(A.rows()), opts);

  la::Vector x = la::zeros(A.rows());
  std::vector<double> history;
  krylov::KrylovWorkspace ws;
  const auto stats = krylov::gmres_in_place(
      op, b.span(), x.span(), opts, nullptr, 0, &ws, &history);

  EXPECT_EQ(stats.status, byvalue.status);
  EXPECT_EQ(stats.iterations, byvalue.iterations);
  EXPECT_EQ(stats.residual_norm, byvalue.residual_norm);
  expect_same_vector(x, byvalue.x);
  EXPECT_EQ(history, byvalue.residual_history);
}
