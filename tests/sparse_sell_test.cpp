#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "gen/circuit.hpp"
#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "gen/random_sparse.hpp"
#include "la/block.hpp"
#include "la/krylov_basis.hpp"
#include "sparse/csr.hpp"
#include "sparse/csr_mixed.hpp"
#include "sparse/sell.hpp"

namespace sparse = sdcgmres::sparse;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

/// Ragged matrix exercising every structural corner: an empty row, a
/// dense row, single-entry rows, and a row count that is not a multiple
/// of any chunk height (phantom slots in the last chunk).
sparse::CsrMatrix ragged_matrix() {
  const std::size_t n = 11;
  sparse::CooMatrix coo(n, n);
  for (std::size_t j = 0; j < n; ++j) coo.add(0, j, 1.0 + 0.1 * j); // dense
  // Row 3 stays empty.
  for (std::size_t i = 1; i < n; ++i) {
    if (i == 3) continue;
    coo.add(i, i, 2.0 + i);
    if (i + 2 < n) coo.add(i, i + 2, -0.5 * i);
    if (i % 3 == 0 && i >= 2) coo.add(i, i - 2, 0.25);
  }
  return sparse::CsrMatrix(std::move(coo));
}

la::Vector test_vector(std::size_t n, double phase = 0.0) {
  la::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(0.7 * static_cast<double>(i + 1) + phase) + 0.25;
  }
  return x;
}

void expect_bitwise_spmv(const sparse::CsrMatrix& A, std::size_t chunk,
                         std::size_t sigma) {
  const sparse::SellMatrix S(A, chunk, sigma);
  const la::Vector x = test_vector(A.cols());
  la::Vector y_csr(A.rows());
  la::Vector y_sell(A.rows(), 7.0); // poison: spmv must overwrite every row
  A.spmv(x, y_csr);
  S.spmv(std::span<const double>(x.span()), y_sell.span());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    EXPECT_EQ(y_csr[i], y_sell[i]) << "row " << i << " C=" << chunk
                                   << " sigma=" << sigma;
  }
}

void expect_bitwise_spmm(const sparse::CsrMatrix& A, std::size_t chunk,
                         std::size_t sigma, std::size_t ncols) {
  const sparse::SellMatrix S(A, chunk, sigma);
  la::KrylovBasis x(A.cols(), ncols);
  for (std::size_t c = 0; c < ncols; ++c) {
    std::span<double> col = x.append();
    const la::Vector v = test_vector(A.cols(), 1.3 * static_cast<double>(c));
    std::copy(v.begin(), v.end(), col.begin());
  }
  std::vector<double> ybuf(A.rows() * ncols);
  la::BlockView yview(ybuf.data(), A.rows(), ncols, A.rows());
  S.spmm(x.view(), yview);
  // Each SpMM output column must be bitwise equal to CSR spmv of that
  // operand column (the backend acceptance contract).
  la::Vector y_ref(A.rows());
  for (std::size_t c = 0; c < ncols; ++c) {
    A.spmv(x.col(c), y_ref.span());
    std::span<const double> got = yview.col(c);
    for (std::size_t i = 0; i < A.rows(); ++i) {
      EXPECT_EQ(y_ref[i], got[i])
          << "col " << c << " row " << i << " C=" << chunk << " b=" << ncols;
    }
  }
}

} // namespace

TEST(Sell, RoundTripReconstructsEveryEntry) {
  const sparse::CsrMatrix A = ragged_matrix();
  const sparse::SellMatrix S(A, 4, 2);
  EXPECT_EQ(S.rows(), A.rows());
  EXPECT_EQ(S.cols(), A.cols());
  EXPECT_EQ(S.nnz(), A.nnz());
  EXPECT_GE(S.stored(), S.nnz());
  // Walk every slot and reassemble the original rows.
  std::vector<std::vector<std::pair<std::size_t, double>>> rebuilt(A.rows());
  for (std::size_t c = 0; c < S.n_chunks(); ++c) {
    const std::size_t base = c * S.chunk();
    for (std::size_t r = 0; r < S.chunk() && base + r < A.rows(); ++r) {
      const std::size_t row = S.perm()[base + r];
      for (std::size_t j = 0; j < S.slot_lengths()[base + r]; ++j) {
        const std::size_t at = S.chunk_ptr()[c] + j * S.chunk() + r;
        rebuilt[row].emplace_back(S.col_idx()[at], S.values()[at]);
      }
    }
  }
  const auto& rp = A.row_ptr();
  for (std::size_t i = 0; i < A.rows(); ++i) {
    ASSERT_EQ(rebuilt[i].size(), rp[i + 1] - rp[i]) << "row " << i;
    for (std::size_t k = 0; k < rebuilt[i].size(); ++k) {
      EXPECT_EQ(rebuilt[i][k].first, A.col_idx()[rp[i] + k]);
      EXPECT_EQ(rebuilt[i][k].second, A.values()[rp[i] + k]);
    }
  }
}

TEST(Sell, PermutationIsitsInverseAndWindowLocal) {
  const sparse::CsrMatrix A = gen::poisson2d(9);
  const std::size_t chunk = 8;
  const std::size_t sigma = 4;
  const sparse::SellMatrix S(A, chunk, sigma);
  ASSERT_EQ(S.perm().size(), A.rows());
  for (std::size_t i = 0; i < A.rows(); ++i) {
    EXPECT_EQ(S.perm()[S.inv_perm()[i]], i);
    // Windowed sort: a row never leaves its sigma-chunk window.
    const std::size_t window = chunk * sigma;
    EXPECT_EQ(S.inv_perm()[i] / window, i / window);
  }
  // Slot lengths are non-increasing inside each chunk (what makes the
  // active-prefix kernel correct).
  for (std::size_t c = 0; c < S.n_chunks(); ++c) {
    for (std::size_t r = 1; r < chunk; ++r) {
      const std::size_t s = c * chunk + r;
      if (s >= S.slot_lengths().size()) break;
      EXPECT_LE(S.slot_lengths()[s], S.slot_lengths()[s - 1]);
    }
  }
}

TEST(Sell, SpmvBitwiseMatchesCsrAcrossGeometries) {
  const sparse::CsrMatrix mats[] = {
      ragged_matrix(), gen::poisson2d(7), gen::convection_diffusion2d(6, 1.5, -0.75),
      gen::circuit_like(), gen::random_diag_dominant(83, 5)};
  for (const auto& A : mats) {
    for (const std::size_t chunk : {1u, 4u, 8u, 16u, 32u, 6u}) {
      for (const std::size_t sigma : {1u, 4u}) {
        expect_bitwise_spmv(A, chunk, sigma);
      }
    }
  }
}

TEST(Sell, SpmmBitwiseMatchesCsrSpmvPerColumn) {
  const sparse::CsrMatrix A = gen::poisson2d(8);
  for (const std::size_t chunk : {4u, 8u}) {
    for (const std::size_t sigma : {1u, 4u}) {
      for (const std::size_t b : {1u, 3u, 4u, 5u, 9u}) {
        expect_bitwise_spmm(A, chunk, sigma, b);
      }
    }
  }
}

TEST(Sell, PaddingIsInertEvenAgainstInfAndNan) {
  // Poison x with Inf/NaN at column 0 -- where padding slots point.  If a
  // kernel ever multiplied a padding slot, 0.0 * Inf = NaN would
  // contaminate a sum; the active-prefix loop must keep every result
  // finite and bitwise equal to CSR (which skips the entries entirely).
  sparse::CooMatrix coo(9, 9);
  for (std::size_t i = 0; i < 9; ++i) coo.add(i, i, 1.0 + i);
  for (std::size_t j = 1; j < 9; ++j) coo.add(8, j, 0.5); // long last row
  const sparse::CsrMatrix A(std::move(coo));
  const sparse::SellMatrix S(A, 4, 1);
  EXPECT_GT(S.stored(), S.nnz()); // padding exists
  la::Vector x = test_vector(9);
  x[0] = std::numeric_limits<double>::infinity();
  la::Vector y_csr(9);
  la::Vector y_sell(9);
  A.spmv(x, y_csr);
  S.spmv(std::span<const double>(x.span()), y_sell.span());
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(y_csr[i], y_sell[i]);
  x[0] = std::numeric_limits<double>::quiet_NaN();
  A.spmv(x, y_csr);
  S.spmv(std::span<const double>(x.span()), y_sell.span());
  for (std::size_t i = 1; i < 9; ++i) { // rows not touching col 0
    EXPECT_EQ(y_csr[i], y_sell[i]);
    EXPECT_FALSE(std::isnan(y_sell[i])) << "padding leaked NaN into row " << i;
  }
}

TEST(Sell, EmptyRowsProduceZeroLikeCsr) {
  sparse::CooMatrix coo(6, 6);
  coo.add(1, 1, 3.0);
  coo.add(4, 2, -1.0);
  const sparse::CsrMatrix A(std::move(coo));
  const sparse::SellMatrix S(A, 4, 1);
  const la::Vector x = test_vector(6);
  la::Vector y(6, 99.0);
  S.spmv(std::span<const double>(x.span()), y.span());
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[2], 0.0);
  EXPECT_EQ(y[3], 0.0);
  EXPECT_EQ(y[5], 0.0);
  EXPECT_EQ(y[1], 3.0 * x[1]);
  EXPECT_EQ(y[4], -1.0 * x[2]);
}

TEST(Sell, GeometryValidation) {
  const sparse::CsrMatrix A = ragged_matrix();
  EXPECT_THROW(sparse::SellMatrix(A, 0, 1), std::invalid_argument);
  EXPECT_THROW(sparse::SellMatrix(A, 257, 1), std::invalid_argument);
  EXPECT_THROW(sparse::SellMatrix(A, 8, 0), std::invalid_argument);
  EXPECT_NO_THROW(sparse::SellMatrix(A, 256, 3));
}

TEST(Sell, NarrowedMirrorBitwiseMatchesWideSell) {
  const sparse::CsrMatrix A = gen::poisson2d(7);
  const sparse::SellMatrix S(A, 8, 1);
  const sparse::SellMatrixT<double, std::int32_t> M(S);
  EXPECT_EQ(M.stored(), S.stored());
  const la::Vector x = test_vector(A.cols());
  la::Vector y_wide(A.rows());
  la::Vector y_mirror(A.rows());
  S.spmv(std::span<const double>(x.span()), y_wide.span());
  M.spmv(std::span<const double>(x.span()), y_mirror.span());
  for (std::size_t i = 0; i < A.rows(); ++i) EXPECT_EQ(y_wide[i], y_mirror[i]);
}

TEST(Sell, FloatMirrorMatchesFloatCsrMirrorBitwise) {
  // The (float, int32) SELL mirror accumulates each row in the same order
  // as the (float, int32) CSR mirror, so the float results are bitwise
  // identical too -- the mixed-plane acceptance contract.
  const sparse::CsrMatrix A = gen::convection_diffusion2d(6, 1.5, -0.75);
  const sparse::SellMatrix S(A, 8, 1);
  const sparse::SellMatrixT<float, std::int32_t> Ms(S);
  const sparse::CsrMatrixT<float, std::int32_t> Mc(A);
  std::vector<float> x(A.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(std::sin(0.7 * static_cast<double>(i + 1)));
  }
  std::vector<float> y_sell(A.rows());
  std::vector<float> y_csr(A.rows());
  Ms.spmv(std::span<const float>(x), std::span<float>(y_sell));
  Mc.spmv(std::span<const float>(x), std::span<float>(y_csr));
  for (std::size_t i = 0; i < A.rows(); ++i) EXPECT_EQ(y_csr[i], y_sell[i]);
}

TEST(Sell, NarrowingOverflowThrows) {
  const sparse::CsrMatrix A = ragged_matrix();
  const sparse::SellMatrix S(A, 4, 1);
  using Tiny = sparse::SellMatrixT<double, std::int8_t>;
  // 11 rows fit int8, but stored() padded entries exceed 127?  Build a
  // matrix that clearly overflows: poisson2d(12) has 144 rows > 127.
  const sparse::SellMatrix big(gen::poisson2d(12), 8, 1);
  EXPECT_THROW(Tiny t(big), std::overflow_error);
  (void)S;
}

TEST(Sell, ThreadCountInvariance) {
#ifdef _OPENMP
  // Large enough to cross the kernels' OpenMP threshold (rows > 2048).
  const sparse::CsrMatrix A = gen::poisson2d(50); // 2500 rows
  const sparse::SellMatrix S(A, 8, 4);
  const la::Vector x = test_vector(A.cols());
  la::Vector y_serial(A.rows());
  la::Vector y_par(A.rows());
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  S.spmv(std::span<const double>(x.span()), y_serial.span());
  omp_set_num_threads(4);
  S.spmv(std::span<const double>(x.span()), y_par.span());
  omp_set_num_threads(saved);
  for (std::size_t i = 0; i < A.rows(); ++i) {
    EXPECT_EQ(y_serial[i], y_par[i]);
  }
  // And still bitwise equal to CSR at the parallel setting.
  la::Vector y_csr(A.rows());
  A.spmv(x, y_csr);
  for (std::size_t i = 0; i < A.rows(); ++i) EXPECT_EQ(y_csr[i], y_par[i]);
#else
  GTEST_SKIP() << "OpenMP not enabled";
#endif
}
