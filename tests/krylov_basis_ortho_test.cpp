/// \file krylov_basis_ortho_test.cpp
/// \brief Equivalence and quality tests for the fused contiguous-basis
/// orthogonalization path against the per-vector reference path.
///
/// The SDC framework's injection/detection semantics hinge on the hook
/// observing exactly the same projection coefficients through either path,
/// so the first half of this file asserts bitwise equality of the hook
/// (i, mgs_steps, value) sequences.  Problem sizes are deliberately below
/// la::dot's OpenMP parallel threshold (4096): there both paths accumulate
/// strictly sequentially and equality is exact.  (With multi-threaded
/// reductions the reference path's combine order is nondeterministic, so
/// only roundoff-level agreement is guaranteed at larger n.)  The second
/// half is the numerical quality property: CGS2 on the contiguous basis
/// must keep basis orthogonality (||Q^T Q - I||_max) no worse than the
/// reference path on the paper's model problems.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "krylov/arnoldi.hpp"
#include "krylov/orthogonalize.hpp"
#include "la/blas1.hpp"
#include "la/blas2.hpp"
#include "la/krylov_basis.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

/// Records every coefficient the hook sees; can also corrupt one of them.
class RecordingHook final : public krylov::ArnoldiHook {
public:
  struct Seen {
    std::size_t i;
    std::size_t mgs_steps;
    double value;
  };
  std::vector<Seen> seen;
  std::size_t corrupt_index = SIZE_MAX;
  double corrupt_factor = 1.0;

  void on_projection_coefficient(const krylov::ArnoldiContext&, std::size_t i,
                                 std::size_t mgs_steps, double& h) override {
    seen.push_back({i, mgs_steps, h});
    if (i == corrupt_index) h *= corrupt_factor;
  }
};

la::Vector generic_vector(std::size_t n, double phase) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + phase) +
           0.01 * static_cast<double>(i % 13);
  }
  return v;
}

/// A (k x n) not-necessarily-orthonormal set of directions, materialized
/// both as the per-vector representation and the contiguous arena.
struct TwinBases {
  std::vector<la::Vector> old_q;
  la::KrylovBasis new_q;
};

TwinBases twin_bases(std::size_t n, std::size_t k) {
  TwinBases out;
  out.new_q = la::KrylovBasis(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    la::Vector v = generic_vector(n, 0.3 + 0.9 * static_cast<double>(j));
    la::scal(1.0 / la::nrm2(v), v);
    out.old_q.push_back(v);
    out.new_q.append(v);
  }
  return out;
}

/// Gram-Schmidt-build an orthonormal basis of Krylov type (q_{j+1} from
/// A*q_j) with the REFERENCE orthogonalize path.
std::vector<la::Vector> build_basis_reference(
    const sdcgmres::sparse::CsrMatrix& A, std::size_t k,
    krylov::Orthogonalization kind) {
  const std::size_t n = A.rows();
  std::vector<la::Vector> q;
  la::Vector v0 = generic_vector(n, 0.3);
  la::scal(1.0 / la::nrm2(v0), v0);
  q.push_back(v0);
  std::vector<double> h(k + 1, 0.0);
  for (std::size_t j = 0; j + 1 < k; ++j) {
    la::Vector v(n);
    A.spmv(q[j], v);
    krylov::orthogonalize(kind, q, j + 1, v, h, nullptr, {});
    la::scal(1.0 / la::nrm2(v), v);
    q.push_back(std::move(v));
  }
  return q;
}

/// Same process on the contiguous arena with the fused path.
la::KrylovBasis build_basis_fused(const sdcgmres::sparse::CsrMatrix& A,
                                  std::size_t k,
                                  krylov::Orthogonalization kind) {
  const std::size_t n = A.rows();
  la::KrylovBasis q(n, k);
  la::Vector v0 = generic_vector(n, 0.3);
  la::scal(1.0 / la::nrm2(v0), v0);
  q.append(v0);
  std::vector<double> h(k + 1, 0.0);
  for (std::size_t j = 0; j + 1 < k; ++j) {
    la::Vector v(n);
    A.spmv(q.col(j), v);
    krylov::orthogonalize(kind, q, j + 1, v, h, nullptr, {});
    la::scal(1.0 / la::nrm2(v), v);
    q.append(v.span());
  }
  return q;
}

double defect_of(const std::vector<la::Vector>& q) {
  double worst = 0.0;
  for (std::size_t a = 0; a < q.size(); ++a) {
    for (std::size_t b = a; b < q.size(); ++b) {
      const double target = (a == b) ? 1.0 : 0.0;
      worst = std::max(worst, std::abs(la::dot(q[a], q[b]) - target));
    }
  }
  return worst;
}

} // namespace

// --- Coefficient / hook equivalence ----------------------------------------

class OrthoParity : public ::testing::TestWithParam<krylov::Orthogonalization> {
};

/// Both paths must produce bitwise-identical hook sequences and identical
/// total coefficients; the orthogonalized vector agrees to roundoff (the
/// fused correction combines columns in blocks).
TEST_P(OrthoParity, HookSequenceAndCoefficientsMatchReferencePath) {
  const krylov::Orthogonalization kind = GetParam();
  const std::size_t n = 777; // odd (block remainders), below omp threshold
  const std::size_t k = 6;
  const TwinBases tb = twin_bases(n, k);

  la::Vector v_old = generic_vector(n, 5.1);
  la::Vector v_new = v_old;
  std::vector<double> h_old(k, 0.0), h_new(k, 0.0);
  RecordingHook hook_old, hook_new;

  krylov::orthogonalize(kind, tb.old_q, k, v_old, h_old, &hook_old, {});
  krylov::orthogonalize(kind, tb.new_q, k, v_new, h_new, &hook_new, {});

  ASSERT_EQ(hook_old.seen.size(), hook_new.seen.size());
  for (std::size_t s = 0; s < hook_old.seen.size(); ++s) {
    EXPECT_EQ(hook_old.seen[s].i, hook_new.seen[s].i) << "event " << s;
    EXPECT_EQ(hook_old.seen[s].mgs_steps, hook_new.seen[s].mgs_steps)
        << "event " << s;
    EXPECT_EQ(hook_old.seen[s].value, hook_new.seen[s].value)
        << "event " << s << " (hook values must be bitwise identical)";
  }
  for (std::size_t i = 0; i < k; ++i) {
    // MGS totals are bitwise identical (same kernel sequence); CGS2 adds a
    // second-pass correction whose rounding may differ, so allow roundoff.
    EXPECT_NEAR(h_new[i], h_old[i], 1e-13 * (1.0 + std::abs(h_old[i])))
        << "h[" << i << "]";
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(v_new[i], v_old[i], 1e-12) << "v[" << i << "]";
  }
}

/// Hook mutations must propagate identically (the paper's injection site:
/// a corrupted coefficient taints everything downstream the same way).
TEST_P(OrthoParity, HookMutationPropagatesIdentically) {
  const krylov::Orthogonalization kind = GetParam();
  const std::size_t n = 333;
  const std::size_t k = 5;
  const TwinBases tb = twin_bases(n, k);

  la::Vector v_old = generic_vector(n, 2.2);
  la::Vector v_new = v_old;
  std::vector<double> h_old(k, 0.0), h_new(k, 0.0);
  RecordingHook hook_old, hook_new;
  hook_old.corrupt_index = 1;
  hook_old.corrupt_factor = 100.0;
  hook_new.corrupt_index = 1;
  hook_new.corrupt_factor = 100.0;

  krylov::orthogonalize(kind, tb.old_q, k, v_old, h_old, &hook_old, {});
  krylov::orthogonalize(kind, tb.new_q, k, v_new, h_new, &hook_new, {});

  ASSERT_EQ(hook_old.seen.size(), hook_new.seen.size());
  for (std::size_t s = 0; s < hook_old.seen.size(); ++s) {
    EXPECT_EQ(hook_old.seen[s].value, hook_new.seen[s].value) << "event " << s;
  }
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_NEAR(h_new[i], h_old[i], 1e-12 * (1.0 + std::abs(h_old[i])))
        << "h[" << i << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, OrthoParity,
                         ::testing::Values(krylov::Orthogonalization::MGS,
                                           krylov::Orthogonalization::CGS,
                                           krylov::Orthogonalization::CGS2),
                         [](const auto& info) {
                           return std::string(krylov::to_string(info.param));
                         });

// --- Arnoldi-level hook equivalence ----------------------------------------

/// krylov::arnoldi (now on the fused contiguous path) must drive the hook
/// through the same (i, mgs_steps, value) sequence as a hand-rolled Arnoldi
/// loop over the per-vector reference path.
TEST(ArnoldiHookEquivalence, FusedPathReproducesReferenceSequence) {
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  const std::size_t m = 8;
  const la::Vector v0 = generic_vector(A.rows(), 0.3);

  RecordingHook hook_new;
  (void)krylov::arnoldi(op, v0, m, krylov::Orthogonalization::MGS, &hook_new);

  // Reference Arnoldi on std::vector<la::Vector>, mirroring the solver loop.
  RecordingHook hook_old;
  std::vector<la::Vector> q;
  la::Vector r = v0;
  la::scal(1.0 / la::nrm2(r), r);
  q.push_back(r);
  std::vector<double> hcol(m + 1, 0.0);
  for (std::size_t j = 0; j < m; ++j) {
    la::Vector v(A.rows());
    op.apply(q[j], v);
    const krylov::ArnoldiContext ctx{.solve_index = 0, .iteration = j};
    krylov::orthogonalize(krylov::Orthogonalization::MGS, q, j + 1, v, hcol,
                          &hook_old, ctx);
    const double hnext = la::nrm2(v);
    la::scal(1.0 / hnext, v);
    q.push_back(std::move(v));
  }

  ASSERT_EQ(hook_new.seen.size(), hook_old.seen.size());
  ASSERT_EQ(hook_new.seen.size(), m * (m + 1) / 2);
  for (std::size_t s = 0; s < hook_new.seen.size(); ++s) {
    EXPECT_EQ(hook_new.seen[s].i, hook_old.seen[s].i) << "event " << s;
    EXPECT_EQ(hook_new.seen[s].mgs_steps, hook_old.seen[s].mgs_steps)
        << "event " << s;
    EXPECT_EQ(hook_new.seen[s].value, hook_old.seen[s].value) << "event " << s;
  }
}

// --- Numerical quality property --------------------------------------------

/// CGS2 on the contiguous basis must produce basis orthogonality no worse
/// than the per-vector path (up to a small slack for reordered correction
/// rounding) on the paper's model problems.
TEST(OrthoQuality, Cgs2OnArenaNoWorseThanReferenceOnModelProblems) {
  struct Case {
    const char* name;
    sdcgmres::sparse::CsrMatrix matrix;
  };
  Case cases[] = {
      {"poisson2d(12)", gen::poisson2d(12)},
      {"convection_diffusion2d(12, 20, 5)",
       gen::convection_diffusion2d(12, 20.0, 5.0)},
  };
  const std::size_t k = 20;
  for (const auto& c : cases) {
    const auto old_q =
        build_basis_reference(c.matrix, k, krylov::Orthogonalization::CGS2);
    const auto new_q =
        build_basis_fused(c.matrix, k, krylov::Orthogonalization::CGS2);
    const double old_defect = defect_of(old_q);
    const double new_defect = la::orthonormality_defect(new_q.view());
    EXPECT_LE(new_defect, old_defect * 4.0 + 1e-14)
        << c.name << ": fused defect " << new_defect << " vs reference "
        << old_defect;
    // Both must be at machine-precision quality for CGS2.
    EXPECT_LT(new_defect, 1e-13) << c.name;
  }
}

/// Same property for MGS (the paper's default), which shares every kernel
/// with the reference path and must match its quality exactly.
TEST(OrthoQuality, MgsOnArenaMatchesReferenceOnModelProblems) {
  const auto A = gen::poisson2d(12);
  const std::size_t k = 20;
  const auto old_q = build_basis_reference(A, k, krylov::Orthogonalization::MGS);
  const auto new_q = build_basis_fused(A, k, krylov::Orthogonalization::MGS);
  const double old_defect = defect_of(old_q);
  const double new_defect = la::orthonormality_defect(new_q.view());
  EXPECT_EQ(new_defect, old_defect)
      << "MGS shares the exact kernel sequence; defects must agree";
}
