#include <gtest/gtest.h>

#include <stdexcept>

#include "sparse/coo.hpp"

namespace sparse = sdcgmres::sparse;

TEST(Coo, EmptyMatrix) {
  sparse::CooMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(Coo, AddStoresTriplet) {
  sparse::CooMatrix m(2, 2);
  m.add(0, 1, 2.5);
  ASSERT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.entries()[0], (sparse::Triplet{0, 1, 2.5}));
}

TEST(Coo, OutOfRangeRowThrows) {
  sparse::CooMatrix m(2, 2);
  EXPECT_THROW(m.add(2, 0, 1.0), std::out_of_range);
}

TEST(Coo, OutOfRangeColThrows) {
  sparse::CooMatrix m(2, 2);
  EXPECT_THROW(m.add(0, 2, 1.0), std::out_of_range);
}

TEST(Coo, CompressSortsByRowThenCol) {
  sparse::CooMatrix m(2, 2);
  m.add(1, 1, 4.0);
  m.add(0, 1, 2.0);
  m.add(1, 0, 3.0);
  m.add(0, 0, 1.0);
  m.compress();
  ASSERT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.entries()[0], (sparse::Triplet{0, 0, 1.0}));
  EXPECT_EQ(m.entries()[1], (sparse::Triplet{0, 1, 2.0}));
  EXPECT_EQ(m.entries()[2], (sparse::Triplet{1, 0, 3.0}));
  EXPECT_EQ(m.entries()[3], (sparse::Triplet{1, 1, 4.0}));
}

TEST(Coo, CompressSumsDuplicates) {
  sparse::CooMatrix m(2, 2);
  m.add(0, 0, 1.0);
  m.add(0, 0, 2.0);
  m.add(0, 0, -0.5);
  m.compress();
  ASSERT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.entries()[0].value, 2.5);
}

TEST(Coo, CompressKeepsExplicitZeros) {
  sparse::CooMatrix m(1, 1);
  m.add(0, 0, 0.0);
  m.compress();
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(Coo, DuplicatesCancellingToZeroRemainStored) {
  sparse::CooMatrix m(1, 2);
  m.add(0, 1, 3.0);
  m.add(0, 1, -3.0);
  m.compress();
  ASSERT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.entries()[0].value, 0.0);
}

TEST(Coo, AccumulateAliasBehavesLikeAdd) {
  sparse::CooMatrix m(2, 2);
  m.accumulate(1, 1, 5.0);
  m.accumulate(1, 1, 1.0);
  m.compress();
  ASSERT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.entries()[0].value, 6.0);
}
