#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dense/triangular.hpp"

namespace dense = sdcgmres::dense;
namespace la = sdcgmres::la;

TEST(BackSubstitute, SolvesDiagonalSystem) {
  la::DenseMatrix R(2, 2);
  R(0, 0) = 2.0;
  R(1, 1) = 4.0;
  const la::Vector y = dense::back_substitute(R, la::Vector{2.0, 8.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(BackSubstitute, SolvesUpperTriangularSystem) {
  // R = [1 2; 0 3], z = [5; 6] -> y = [1; 2].
  la::DenseMatrix R(2, 2);
  R(0, 0) = 1.0;
  R(0, 1) = 2.0;
  R(1, 1) = 3.0;
  const la::Vector y = dense::back_substitute(R, la::Vector{5.0, 6.0});
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
}

TEST(BackSubstitute, DimensionMismatchThrows) {
  la::DenseMatrix R(2, 3);
  EXPECT_THROW((void)dense::back_substitute(R, la::Vector(2)),
               std::invalid_argument);
  la::DenseMatrix S(2, 2);
  EXPECT_THROW((void)dense::back_substitute(S, la::Vector(3)),
               std::invalid_argument);
}

TEST(BackSubstitute, SingularDiagonalProducesIeeeInf) {
  // Deliberate design (paper Section VI-D, policy 2): a zero pivot must
  // surface as Inf/NaN, not as an exception.
  la::DenseMatrix R(2, 2);
  R(0, 0) = 1.0;
  R(0, 1) = 1.0;
  R(1, 1) = 0.0;
  const la::Vector y = dense::back_substitute(R, la::Vector{1.0, 1.0});
  EXPECT_TRUE(std::isinf(y[1]));
  EXPECT_FALSE(std::isfinite(y[0])); // Inf propagates into the other entry
}

TEST(BackSubstitute, ZeroOverZeroProducesNaN) {
  la::DenseMatrix R(1, 1);
  R(0, 0) = 0.0;
  const la::Vector y = dense::back_substitute(R, la::Vector{0.0});
  EXPECT_TRUE(std::isnan(y[0]));
}

TEST(ForwardSubstitute, SolvesLowerTriangularSystem) {
  // L = [2 0; 1 4], z = [2; 9] -> y = [1; 2].
  la::DenseMatrix L(2, 2);
  L(0, 0) = 2.0;
  L(1, 0) = 1.0;
  L(1, 1) = 4.0;
  const la::Vector y = dense::forward_substitute(L, la::Vector{2.0, 9.0});
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(ForwardSubstitute, DimensionMismatchThrows) {
  la::DenseMatrix L(3, 2);
  EXPECT_THROW((void)dense::forward_substitute(L, la::Vector(3)),
               std::invalid_argument);
}

TEST(TriangularRoundTrip, ForwardThenBackRecoversIdentityAction) {
  // Solve R^T (R y) = R^T z via forward+back; for R nonsingular this is
  // just a consistency exercise between the two kernels.
  la::DenseMatrix R(3, 3);
  R(0, 0) = 2.0; R(0, 1) = 1.0; R(0, 2) = -1.0;
  R(1, 1) = 3.0; R(1, 2) = 0.5;
  R(2, 2) = 1.5;
  const la::Vector z{1.0, 2.0, 3.0};
  const la::Vector y = dense::back_substitute(R, z);
  // Verify R*y == z.
  for (std::size_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (std::size_t j = i; j < 3; ++j) sum += R(i, j) * y[j];
    EXPECT_NEAR(sum, z[i], 1e-14);
  }
}
