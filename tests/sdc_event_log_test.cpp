#include <gtest/gtest.h>

#include "sdc/event_log.hpp"

namespace sdc = sdcgmres::sdc;

TEST(EventLog, StartsEmpty) {
  sdc::EventLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.count(sdc::EventKind::Injection), 0u);
}

TEST(EventLog, RecordsInOrder) {
  sdc::EventLog log;
  log.record({.kind = sdc::EventKind::Injection,
              .solve_index = 1,
              .iteration = 2,
              .coefficient = 0,
              .value_before = 1.0,
              .value_after = 2.0,
              .bound = 0.0,
              .description = "first"});
  log.record({.kind = sdc::EventKind::Detection,
              .solve_index = 1,
              .iteration = 2,
              .coefficient = 0,
              .value_before = 2.0,
              .value_after = 2.0,
              .bound = 1.5,
              .description = "second"});
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].description, "first");
  EXPECT_EQ(log.events()[1].description, "second");
  EXPECT_EQ(log.events()[1].bound, 1.5);
}

TEST(EventLog, CountsByKind) {
  sdc::EventLog log;
  for (int i = 0; i < 3; ++i) {
    log.record({.kind = sdc::EventKind::Injection,
                .solve_index = 0,
                .iteration = 0,
                .coefficient = 0,
                .value_before = 0,
                .value_after = 0,
                .bound = 0,
                .description = ""});
  }
  log.record({.kind = sdc::EventKind::Detection,
              .solve_index = 0,
              .iteration = 0,
              .coefficient = 0,
              .value_before = 0,
              .value_after = 0,
              .bound = 0,
              .description = ""});
  EXPECT_EQ(log.count(sdc::EventKind::Injection), 3u);
  EXPECT_EQ(log.count(sdc::EventKind::Detection), 1u);
}

TEST(EventLog, ClearEmptiesTheLog) {
  sdc::EventLog log;
  log.record({});
  ASSERT_FALSE(log.empty());
  log.clear();
  EXPECT_TRUE(log.empty());
}
