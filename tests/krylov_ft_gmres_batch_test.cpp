#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

#include "gen/poisson.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/ft_gmres_batch.hpp"
#include "krylov/hooks.hpp"
#include "krylov/operator.hpp"
#include "sdc/detector.hpp"
#include "sdc/fault_model.hpp"
#include "sdc/injection.hpp"
#include "solver/solver.hpp"
#include "sparse/csr.hpp"

using namespace sdcgmres;

namespace {

/// Deterministic, mutually distinct right-hand sides.
std::vector<la::Vector> test_rhs(std::size_t n, std::size_t count) {
  std::vector<la::Vector> bs(count, la::Vector(n));
  for (std::size_t c = 0; c < count; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      bs[c][i] = std::sin(0.31 * static_cast<double>(i + 1) *
                          static_cast<double>(c + 1)) +
                 1.0;
    }
  }
  return bs;
}

/// Every field of the two results must agree, the vectors bitwise.
void expect_same_result(const krylov::FtGmresResult& got,
                        const krylov::FtGmresResult& want,
                        const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(got.status, want.status);
  EXPECT_EQ(got.outer_iterations, want.outer_iterations);
  EXPECT_EQ(got.total_inner_iterations, want.total_inner_iterations);
  EXPECT_EQ(got.total_inner_applies, want.total_inner_applies);
  EXPECT_EQ(got.sanitized_outputs, want.sanitized_outputs);
  EXPECT_EQ(got.residual_norm, want.residual_norm); // bitwise
  ASSERT_EQ(got.x.size(), want.x.size());
  for (std::size_t i = 0; i < got.x.size(); ++i) {
    ASSERT_EQ(got.x[i], want.x[i]) << "x[" << i << "]";
  }
  ASSERT_EQ(got.residual_history.size(), want.residual_history.size());
  for (std::size_t i = 0; i < got.residual_history.size(); ++i) {
    ASSERT_EQ(got.residual_history[i], want.residual_history[i])
        << "history[" << i << "]";
  }
  ASSERT_EQ(got.inner_solves.size(), want.inner_solves.size());
  for (std::size_t i = 0; i < got.inner_solves.size(); ++i) {
    EXPECT_EQ(got.inner_solves[i].outer_index,
              want.inner_solves[i].outer_index);
    EXPECT_EQ(got.inner_solves[i].status, want.inner_solves[i].status);
    EXPECT_EQ(got.inner_solves[i].iterations,
              want.inner_solves[i].iterations);
    EXPECT_EQ(got.inner_solves[i].operator_applies,
              want.inner_solves[i].operator_applies);
    EXPECT_EQ(got.inner_solves[i].residual_norm,
              want.inner_solves[i].residual_norm);
  }
}

krylov::FtGmresOptions small_opts() {
  krylov::FtGmresOptions opts;
  opts.inner.max_iters = 8;
  opts.outer.tol = 1e-8;
  opts.outer.max_outer = 60;
  return opts;
}

} // namespace

TEST(FtGmresBatch, LockstepSolvesAreBitwiseIdenticalToSolo) {
  const auto A = gen::poisson2d(12); // n = 144
  const krylov::CsrOperator op(A);
  const auto opts = small_opts();
  const auto bs = test_rhs(A.rows(), 4);

  const auto batch = krylov::ft_gmres_batch(op, bs, opts);
  ASSERT_EQ(batch.size(), bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    const auto solo = krylov::ft_gmres(op, bs[i], opts);
    expect_same_result(batch[i], solo, "instance vs solo");
    EXPECT_EQ(batch[i].status, krylov::SolveStatus::Converged);
  }
}

TEST(FtGmresBatch, EarlyDropoutDoesNotPerturbSurvivors) {
  const auto A = gen::poisson2d(10); // n = 100
  const krylov::CsrOperator op(A);
  const auto opts = small_opts();

  // Heterogeneous convergence: a zero rhs drops out before the first
  // iteration, a near-singular-direction rhs takes its own path, the
  // rest converge at different outer counts.  The survivors must be
  // bitwise equal to their solo runs regardless of who leaves when.
  auto bs = test_rhs(A.rows(), 5);
  for (std::size_t i = 0; i < A.rows(); ++i) bs[1][i] = 0.0;
  for (std::size_t i = 0; i < A.rows(); ++i) {
    bs[3][i] *= 1e-6; // same direction, tiny scale: different residuals
  }

  const auto batch = krylov::ft_gmres_batch(op, bs, opts);
  ASSERT_EQ(batch.size(), bs.size());
  // The zero-rhs instance converges instantly (its solo run does too).
  EXPECT_EQ(batch[1].outer_iterations, 0u);
  bool heterogeneous = false;
  for (std::size_t i = 0; i < bs.size(); ++i) {
    const auto solo = krylov::ft_gmres(op, bs[i], opts);
    expect_same_result(batch[i], solo, "dropout instance vs solo");
    heterogeneous |= batch[i].outer_iterations != batch[0].outer_iterations;
  }
  EXPECT_TRUE(heterogeneous) << "test wants staggered dropout";
}

TEST(FtGmresBatch, PerInstanceHooksSeeTheSoloEventStream) {
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  const auto opts = small_opts();
  const auto bs = test_rhs(A.rows(), 3);
  const double bound = A.frobenius_norm();

  // One fault campaign + detector chain per instance, each planning a
  // different injection site -- exactly the sweep engine's block shape.
  const std::size_t sites[] = {0, 5, 11};
  std::vector<sdc::FaultCampaign> campaigns;
  campaigns.reserve(bs.size());
  std::vector<sdc::HessenbergBoundDetector> detectors;
  detectors.reserve(bs.size());
  std::vector<krylov::HookChain> chains(bs.size());
  std::vector<krylov::ArnoldiHook*> hooks(bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    campaigns.emplace_back(sdc::InjectionPlan::hessenberg(
        sites[i], sdc::MgsPosition::First, sdc::FaultModel::scale(1e150)));
    detectors.emplace_back(bound, sdc::DetectorResponse::AbortSolve);
    chains[i].add(&campaigns[i]);
    chains[i].add(&detectors[i]);
    hooks[i] = &chains[i];
  }

  const auto batch = krylov::ft_gmres_batch(op, bs, opts, hooks);

  for (std::size_t i = 0; i < bs.size(); ++i) {
    sdc::FaultCampaign solo_campaign(sdc::InjectionPlan::hessenberg(
        sites[i], sdc::MgsPosition::First, sdc::FaultModel::scale(1e150)));
    sdc::HessenbergBoundDetector solo_detector(
        bound, sdc::DetectorResponse::AbortSolve);
    krylov::HookChain solo_chain;
    solo_chain.add(&solo_campaign);
    solo_chain.add(&solo_detector);
    const auto solo = krylov::ft_gmres(op, bs[i], opts, &solo_chain);
    expect_same_result(batch[i], solo, "hooked instance vs solo");
    EXPECT_EQ(campaigns[i].fired(), solo_campaign.fired());
    EXPECT_EQ(detectors[i].triggered(), solo_detector.triggered());
    EXPECT_TRUE(campaigns[i].fired());
    EXPECT_TRUE(detectors[i].triggered()); // class-1 faults exceed ||A||_F
  }
}

TEST(FtGmresBatch, EmptyBatchAndHookMismatch) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  const auto opts = small_opts();
  EXPECT_TRUE(
      krylov::ft_gmres_batch(op, std::vector<la::Vector>{}, opts).empty());

  const auto bs = test_rhs(A.rows(), 2);
  krylov::ArnoldiHook* one_hook[] = {nullptr};
  EXPECT_THROW(
      (void)krylov::ft_gmres_batch(op, bs, opts,
                                   std::span<krylov::ArnoldiHook* const>(
                                       one_hook, 1)),
      std::invalid_argument);
}

TEST(FtGmresBatch, DefaultApplyBlockFallbackKeepsGuestOperatorsWorking) {
  // ScaledOperator does not override apply_block, so the batch runs it
  // through the loop-over-columns fallback -- results must still be
  // bitwise equal to the solo solves (which use the same span core).
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator csr(A);
  const krylov::ScaledOperator op(csr, 2.0);
  const auto opts = small_opts();
  const auto bs = test_rhs(A.rows(), 3);

  const auto batch = krylov::ft_gmres_batch(op, bs, opts);
  for (std::size_t i = 0; i < bs.size(); ++i) {
    const auto solo = krylov::ft_gmres(op, bs[i], opts);
    expect_same_result(batch[i], solo, "fallback operator vs solo");
  }
}

TEST(FtGmresBatch, ReusedWorkspaceStaysBitwiseIdentical) {
  const auto A = gen::poisson2d(9);
  const krylov::CsrOperator op(A);
  const auto opts = small_opts();
  krylov::FtGmresBatchWorkspace ws;

  const auto bs4 = test_rhs(A.rows(), 4);
  const auto first = krylov::ft_gmres_batch(op, bs4, opts, {}, &ws);
  // Re-solving a smaller batch through the warm workspace (instances,
  // staging blocks) must not change a single bit.
  const auto bs2 = test_rhs(A.rows(), 2);
  const auto second = krylov::ft_gmres_batch(op, bs2, opts, {}, &ws);
  for (std::size_t i = 0; i < bs2.size(); ++i) {
    const auto solo = krylov::ft_gmres(op, bs2[i], opts);
    expect_same_result(second[i], solo, "warm workspace vs solo");
  }
  (void)first;
}

TEST(BatchedFtGmresSolverFacade, SingleSolveMatchesFtGmresSolver) {
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  solver::Options options;
  options.inner_iters = 8;
  const auto bs = test_rhs(A.rows(), 1);

  solver::FtGmresSolver solo(op, options);
  solver::BatchedFtGmresSolver batched(op, options);
  la::Vector x_solo(A.rows());
  la::Vector x_batch(A.rows());
  const auto r_solo = solo.solve(bs[0].span(), x_solo.span());
  const auto r_batch = batched.solve(bs[0].span(), x_batch.span());

  EXPECT_EQ(r_batch.status, r_solo.status);
  EXPECT_EQ(r_batch.iterations, r_solo.iterations);
  EXPECT_EQ(r_batch.residual_norm, r_solo.residual_norm);
  EXPECT_EQ(r_batch.residual_history, r_solo.residual_history);
  for (std::size_t i = 0; i < x_solo.size(); ++i) {
    ASSERT_EQ(x_batch[i], x_solo[i]) << "x[" << i << "]";
  }
}

TEST(BatchedFtGmresSolverFacade, SolveBatchValidatesShapes) {
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  solver::BatchedFtGmresSolver batched(op);
  la::Vector b(A.rows());
  la::Vector x_short(A.rows() - 1);
  const std::span<const double> bs[] = {b.span()};
  std::span<double> xs_short[] = {x_short.span()};
  EXPECT_THROW((void)batched.solve_batch(bs, xs_short),
               std::invalid_argument);
  EXPECT_THROW((void)batched.solve_batch(bs, {}), std::invalid_argument);
}

TEST(BatchedFtGmresSolverFacade, SingleSolveHookDoesNotLeakIntoSolveBatch) {
  // The set_hook() seam covers solve() only; solve_batch() refuses to
  // run with an installed single-solve hook but no per-instance hooks
  // (silently dropping a fault campaign would corrupt an experiment).
  const auto A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  solver::BatchedFtGmresSolver batched(op);
  krylov::HookChain chain;
  batched.set_hook(&chain);
  la::Vector b = la::ones(A.rows());
  la::Vector x(A.rows());
  const std::span<const double> bs[] = {b.span()};
  std::span<double> xs[] = {x.span()};
  EXPECT_THROW((void)batched.solve_batch(bs, xs), std::invalid_argument);
  // Per-instance hooks (even the same chain) make it legal again.
  krylov::ArnoldiHook* hooks[] = {&chain};
  EXPECT_NO_THROW((void)batched.solve_batch(bs, xs, hooks));
  batched.set_hook(nullptr);
  EXPECT_NO_THROW((void)batched.solve_batch(bs, xs));
}

// ---------------------------------------------------------------------------
// Inner-lockstep coverage: with PR 5 the B inner GMRES solves of a batch
// advance in lockstep too (one fused product per inner Arnoldi iteration),
// so these tests pin the bitwise-identity contract across fault classes,
// injection positions, and detector-triggered inner aborts mid-block.
// ---------------------------------------------------------------------------

TEST(FtGmresBatch, FaultClassesAndPositionsStayBitwiseIdentical) {
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  const auto opts = small_opts();
  const auto bs = test_rhs(A.rows(), 3);
  const std::size_t sites[] = {0, 5, 11};

  const sdc::FaultModel models[] = {
      sdc::fault_classes::very_large(),      // class 1
      sdc::fault_classes::slightly_smaller(), // class 2
      sdc::fault_classes::nearly_zero(),      // class 3
  };
  const sdc::MgsPosition positions[] = {sdc::MgsPosition::First,
                                        sdc::MgsPosition::Last};
  for (const auto& model : models) {
    for (const auto position : positions) {
      SCOPED_TRACE(static_cast<int>(position));
      std::vector<sdc::FaultCampaign> campaigns;
      campaigns.reserve(bs.size());
      std::vector<krylov::ArnoldiHook*> hooks(bs.size());
      for (std::size_t i = 0; i < bs.size(); ++i) {
        campaigns.emplace_back(
            sdc::InjectionPlan::hessenberg(sites[i], position, model));
        hooks[i] = &campaigns[i];
      }
      const auto batch = krylov::ft_gmres_batch(op, bs, opts, hooks);
      for (std::size_t i = 0; i < bs.size(); ++i) {
        sdc::FaultCampaign solo_campaign(
            sdc::InjectionPlan::hessenberg(sites[i], position, model));
        const auto solo = krylov::ft_gmres(op, bs[i], opts, &solo_campaign);
        expect_same_result(batch[i], solo, "fault class/position vs solo");
        EXPECT_EQ(campaigns[i].fired(), solo_campaign.fired());
      }
    }
  }
}

TEST(FtGmresBatch, PartialInnerAbortMidBlockKeepsEveryoneBitwise) {
  // Only SOME instances carry an abort-response detector: their inner
  // engines terminate mid-inner-block (dropping out of the fused inner
  // products) while the unhooked instances' inner solves run to their
  // full budget.  Every instance -- aborted and survivor alike -- must
  // still match its solo run bitwise.
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  const auto opts = small_opts();
  const auto bs = test_rhs(A.rows(), 4);
  const double bound = A.frobenius_norm();
  const std::size_t abort_sites[] = {3, 9};

  std::vector<sdc::FaultCampaign> campaigns;
  campaigns.reserve(2);
  std::vector<sdc::HessenbergBoundDetector> detectors;
  detectors.reserve(2);
  std::vector<krylov::HookChain> chains(2);
  std::vector<krylov::ArnoldiHook*> hooks(bs.size(), nullptr);
  for (std::size_t k = 0; k < 2; ++k) {
    campaigns.emplace_back(sdc::InjectionPlan::hessenberg(
        abort_sites[k], sdc::MgsPosition::First,
        sdc::FaultModel::scale(1e150)));
    detectors.emplace_back(bound, sdc::DetectorResponse::AbortSolve);
    chains[k].add(&campaigns[k]);
    chains[k].add(&detectors[k]);
    hooks[1 + k] = &chains[k]; // instances 1 and 2 abort, 0 and 3 do not
  }

  const auto batch = krylov::ft_gmres_batch(op, bs, opts, hooks);
  EXPECT_TRUE(detectors[0].triggered());
  EXPECT_TRUE(detectors[1].triggered());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    sdc::FaultCampaign solo_campaign(sdc::InjectionPlan::hessenberg(
        i == 1 || i == 2 ? abort_sites[i - 1] : 0, sdc::MgsPosition::First,
        sdc::FaultModel::scale(1e150)));
    sdc::HessenbergBoundDetector solo_detector(
        bound, sdc::DetectorResponse::AbortSolve);
    krylov::HookChain solo_chain;
    solo_chain.add(&solo_campaign);
    solo_chain.add(&solo_detector);
    krylov::ArnoldiHook* solo_hook =
        (i == 1 || i == 2) ? static_cast<krylov::ArnoldiHook*>(&solo_chain)
                           : nullptr;
    const auto solo = krylov::ft_gmres(op, bs[i], opts, solo_hook);
    expect_same_result(batch[i], solo, "partial abort vs solo");
  }
  // The aborted instances record at least one AbortedByDetector inner.
  const auto aborted = [](const krylov::FtGmresResult& r) {
    for (const auto& rec : r.inner_solves) {
      if (rec.status == krylov::SolveStatus::AbortedByDetector) return true;
    }
    return false;
  };
  EXPECT_TRUE(aborted(batch[1]));
  EXPECT_TRUE(aborted(batch[2]));
  EXPECT_FALSE(aborted(batch[0]));
  EXPECT_FALSE(aborted(batch[3]));
}

TEST(FtGmresBatch, InnerLockstepSharesMatrixStreams) {
  // The acceptance criterion of the inner-lockstep engine, measured with
  // the LinearOperator traffic counters: the batch consumes the SAME
  // operand columns as the solo runs (identical work, bitwise identical
  // results) while paying ~1/B of the matrix streams -- because every
  // inner Arnoldi iteration (and inner cycle start, and outer product)
  // is one fused apply_block across all live instances.
  const auto A = gen::poisson2d(12);
  const krylov::CsrOperator op(A);
  const auto opts = small_opts();
  const std::size_t B = 4;
  const auto bs = test_rhs(A.rows(), B);

  op.reset_stats();
  std::size_t total_outer = 0;
  std::vector<krylov::FtGmresResult> solos;
  for (std::size_t i = 0; i < B; ++i) {
    solos.push_back(krylov::ft_gmres(op, bs[i], opts));
    total_outer += solos.back().outer_iterations;
  }
  const krylov::OperatorStats serial = op.stats();
  EXPECT_EQ(serial.apply_block_calls, 0u);

  op.reset_stats();
  const auto batch = krylov::ft_gmres_batch(op, bs, opts);
  const krylov::OperatorStats batched = op.stats();

  for (std::size_t i = 0; i < B; ++i) {
    expect_same_result(batch[i], solos[i], "counter run vs solo");
  }
  // Same work: the per-instance operation sequences are identical, so the
  // operand-column totals agree exactly.
  EXPECT_EQ(batched.columns(), serial.columns());
  // ~1/B the streams: fused blocks for every lockstep product.  The slack
  // term covers the per-instance products that cannot fuse (FgmresEngine's
  // initial residual and explicit convergence verification, one-live-
  // instance tails after dropout).
  EXPECT_GT(batched.apply_block_calls, 0u);
  EXPECT_LE(batched.streams(), serial.streams() / B + 3 * B + total_outer);
  EXPECT_LT(2 * batched.streams(), serial.streams());
}

TEST(FtGmresBatch, RetryReliableMidBlockKeepsEveryoneBitwise) {
  // Recovery in lockstep: instances 1 and 2 carry a retry_reliable
  // detector and get their flagged inner solve recomputed reliably
  // (in-place engine replacement inside the running block), while 0 and 3
  // run untouched.  Every instance must still match its solo run bitwise.
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  auto opts = small_opts();
  opts.recovery = krylov::InnerRecovery::RetryReliable;
  const auto bs = test_rhs(A.rows(), 4);
  const double bound = A.frobenius_norm();
  const std::size_t fault_sites[] = {3, 9};

  std::vector<sdc::FaultCampaign> campaigns;
  campaigns.reserve(2);
  std::vector<sdc::HessenbergBoundDetector> detectors;
  detectors.reserve(2);
  std::vector<krylov::HookChain> chains(2);
  std::vector<krylov::ArnoldiHook*> hooks(bs.size(), nullptr);
  for (std::size_t k = 0; k < 2; ++k) {
    campaigns.emplace_back(sdc::InjectionPlan::hessenberg(
        fault_sites[k], sdc::MgsPosition::First,
        sdc::FaultModel::scale(1e150)));
    detectors.emplace_back(bound, sdc::DetectorResponse::RetryReliable);
    chains[k].add(&campaigns[k]);
    chains[k].add(&detectors[k]);
    hooks[1 + k] = &chains[k];
  }

  const auto batch = krylov::ft_gmres_batch(op, bs, opts, hooks);
  EXPECT_TRUE(detectors[0].triggered());
  EXPECT_TRUE(detectors[1].triggered());
  EXPECT_EQ(batch[1].reliable_retries, 1u);
  EXPECT_EQ(batch[2].reliable_retries, 1u);
  for (std::size_t i = 0; i < bs.size(); ++i) {
    krylov::HookChain solo_chain;
    sdc::FaultCampaign solo_campaign(sdc::InjectionPlan::hessenberg(
        i == 1 || i == 2 ? fault_sites[i - 1] : 0, sdc::MgsPosition::First,
        sdc::FaultModel::scale(1e150)));
    sdc::HessenbergBoundDetector solo_detector(
        bound, sdc::DetectorResponse::RetryReliable);
    krylov::ArnoldiHook* solo_hook = nullptr;
    if (i == 1 || i == 2) {
      solo_chain.add(&solo_campaign);
      solo_chain.add(&solo_detector);
      solo_hook = &solo_chain;
    }
    const auto solo = krylov::ft_gmres(op, bs[i], opts, solo_hook);
    expect_same_result(batch[i], solo, "retry_reliable vs solo");
    EXPECT_EQ(batch[i].reliable_retries, solo.reliable_retries);
  }
}

TEST(FtGmresBatch, RestartOuterMidBlockKeepsEveryoneBitwise) {
  // restart_outer discards a poisoned outer basis mid-batch: the
  // restarting instance leaves the current lockstep round and rejoins
  // with a fresh cycle, without perturbing the other instances.
  const auto A = gen::poisson2d(10);
  const krylov::CsrOperator op(A);
  auto opts = small_opts();
  opts.recovery = krylov::InnerRecovery::RestartOuter;
  const auto bs = test_rhs(A.rows(), 3);
  const double bound = A.frobenius_norm();

  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      5, sdc::MgsPosition::First, sdc::FaultModel::scale(1e150)));
  sdc::HessenbergBoundDetector detector(bound,
                                        sdc::DetectorResponse::RestartOuter);
  krylov::HookChain chain({&campaign, &detector});
  std::vector<krylov::ArnoldiHook*> hooks(bs.size(), nullptr);
  hooks[1] = &chain;

  const auto batch = krylov::ft_gmres_batch(op, bs, opts, hooks);
  EXPECT_TRUE(detector.triggered());
  EXPECT_EQ(batch[1].outer_restarts, 1u);
  for (std::size_t i = 0; i < bs.size(); ++i) {
    sdc::FaultCampaign solo_campaign(sdc::InjectionPlan::hessenberg(
        5, sdc::MgsPosition::First, sdc::FaultModel::scale(1e150)));
    sdc::HessenbergBoundDetector solo_detector(
        bound, sdc::DetectorResponse::RestartOuter);
    krylov::HookChain solo_chain({&solo_campaign, &solo_detector});
    const auto solo = krylov::ft_gmres(
        op, bs[i], opts, i == 1 ? &solo_chain : nullptr);
    expect_same_result(batch[i], solo, "restart_outer vs solo");
    EXPECT_EQ(batch[i].outer_restarts, solo.outer_restarts);
  }
}
