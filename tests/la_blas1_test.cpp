#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/blas1.hpp"

namespace la = sdcgmres::la;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
} // namespace

TEST(Blas1Dot, OrthogonalVectorsGiveZero) {
  la::Vector x{1.0, 0.0};
  la::Vector y{0.0, 5.0};
  EXPECT_EQ(la::dot(x, y), 0.0);
}

TEST(Blas1Dot, MatchesHandComputedValue) {
  la::Vector x{1.0, 2.0, 3.0};
  la::Vector y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(la::dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(Blas1Dot, SizeMismatchThrows) {
  la::Vector x(3);
  la::Vector y(4);
  EXPECT_THROW((void)la::dot(x, y), std::invalid_argument);
}

TEST(Blas1Dot, LargeVectorParallelPathAgreesWithSerialSum) {
  const std::size_t n = 100000; // above the OpenMP threshold
  la::Vector x(n, 1.0);
  la::Vector y(n, 2.0);
  EXPECT_DOUBLE_EQ(la::dot(x, y), 2.0 * static_cast<double>(n));
}

TEST(Blas1Norms, Nrm2OfUnitAxisVector) {
  EXPECT_DOUBLE_EQ(la::nrm2(la::unit(7, 3)), 1.0);
}

TEST(Blas1Norms, Nrm2Pythagorean) {
  la::Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(la::nrm2(v), 5.0);
}

TEST(Blas1Norms, Nrm1SumsAbsoluteValues) {
  la::Vector v{-1.0, 2.0, -3.0};
  EXPECT_DOUBLE_EQ(la::nrm1(v), 6.0);
}

TEST(Blas1Norms, NrmInfPicksLargestMagnitude) {
  la::Vector v{-7.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(la::nrminf(v), 7.0);
}

TEST(Blas1Norms, NrmInfOfEmptyIsZero) {
  la::Vector v;
  EXPECT_EQ(la::nrminf(v), 0.0);
}

TEST(Blas1Axpy, BasicUpdate) {
  la::Vector x{1.0, 2.0};
  la::Vector y{10.0, 20.0};
  la::axpy(2.0, x, y);
  EXPECT_EQ(y[0], 12.0);
  EXPECT_EQ(y[1], 24.0);
}

TEST(Blas1Axpy, SizeMismatchThrows) {
  la::Vector x(2);
  la::Vector y(3);
  EXPECT_THROW(la::axpy(1.0, x, y), std::invalid_argument);
}

TEST(Blas1Waxpby, ThreeOperandForm) {
  la::Vector x{1.0, 2.0};
  la::Vector y{3.0, 4.0};
  la::Vector w;
  la::waxpby(2.0, x, -1.0, y, w);
  EXPECT_EQ(w[0], -1.0);
  EXPECT_EQ(w[1], 0.0);
}

TEST(Blas1Waxpby, OutputMayAliasInput) {
  la::Vector x{1.0, 2.0};
  la::Vector y{3.0, 4.0};
  la::waxpby(1.0, x, 1.0, y, y); // y := x + y
  EXPECT_EQ(y[0], 4.0);
  EXPECT_EQ(y[1], 6.0);
}

TEST(Blas1Scal, ScalesInPlace) {
  la::Vector x{1.0, -2.0};
  la::scal(-3.0, x);
  EXPECT_EQ(x[0], -3.0);
  EXPECT_EQ(x[1], 6.0);
}

TEST(Blas1Copy, ResizesDestination) {
  la::Vector x{1.0, 2.0, 3.0};
  la::Vector y;
  la::copy(x, y);
  EXPECT_EQ(y, x);
}

TEST(Blas1Hadamard, ElementWiseProduct) {
  la::Vector x{1.0, 2.0, 3.0};
  la::Vector y{2.0, 0.5, -1.0};
  la::Vector z;
  la::hadamard(x, y, z);
  EXPECT_EQ(z[0], 2.0);
  EXPECT_EQ(z[1], 1.0);
  EXPECT_EQ(z[2], -3.0);
}

TEST(Blas1Finite, AllFiniteOnCleanVector) {
  la::Vector v{1.0, -2.0, 0.0};
  EXPECT_TRUE(la::all_finite(v));
  EXPECT_EQ(la::count_nonfinite(v), 0u);
}

TEST(Blas1Finite, DetectsInf) {
  la::Vector v{1.0, kInf, 0.0};
  EXPECT_FALSE(la::all_finite(v));
  EXPECT_EQ(la::count_nonfinite(v), 1u);
}

TEST(Blas1Finite, DetectsNaN) {
  la::Vector v{kNaN, kNaN, 0.0};
  EXPECT_FALSE(la::all_finite(v));
  EXPECT_EQ(la::count_nonfinite(v), 2u);
}

TEST(Blas1Finite, NegativeInfCounts) {
  la::Vector v{-kInf};
  EXPECT_EQ(la::count_nonfinite(v), 1u);
}
