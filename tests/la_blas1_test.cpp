#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "la/blas1.hpp"

namespace la = sdcgmres::la;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
} // namespace

TEST(Blas1Dot, OrthogonalVectorsGiveZero) {
  la::Vector x{1.0, 0.0};
  la::Vector y{0.0, 5.0};
  EXPECT_EQ(la::dot(x, y), 0.0);
}

TEST(Blas1Dot, MatchesHandComputedValue) {
  la::Vector x{1.0, 2.0, 3.0};
  la::Vector y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(la::dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(Blas1Dot, SizeMismatchThrows) {
  la::Vector x(3);
  la::Vector y(4);
  EXPECT_THROW((void)la::dot(x, y), std::invalid_argument);
}

TEST(Blas1Dot, LargeVectorParallelPathAgreesWithSerialSum) {
  const std::size_t n = 100000; // above the OpenMP threshold
  la::Vector x(n, 1.0);
  la::Vector y(n, 2.0);
  EXPECT_DOUBLE_EQ(la::dot(x, y), 2.0 * static_cast<double>(n));
}

TEST(Blas1Norms, Nrm2OfUnitAxisVector) {
  EXPECT_DOUBLE_EQ(la::nrm2(la::unit(7, 3)), 1.0);
}

TEST(Blas1Norms, Nrm2Pythagorean) {
  la::Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(la::nrm2(v), 5.0);
}

TEST(Blas1Norms, Nrm1SumsAbsoluteValues) {
  la::Vector v{-1.0, 2.0, -3.0};
  EXPECT_DOUBLE_EQ(la::nrm1(v), 6.0);
}

TEST(Blas1Norms, NrmInfPicksLargestMagnitude) {
  la::Vector v{-7.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(la::nrminf(v), 7.0);
}

TEST(Blas1Norms, NrmInfOfEmptyIsZero) {
  la::Vector v;
  EXPECT_EQ(la::nrminf(v), 0.0);
}

TEST(Blas1Axpy, BasicUpdate) {
  la::Vector x{1.0, 2.0};
  la::Vector y{10.0, 20.0};
  la::axpy(2.0, x, y);
  EXPECT_EQ(y[0], 12.0);
  EXPECT_EQ(y[1], 24.0);
}

TEST(Blas1Axpy, SizeMismatchThrows) {
  la::Vector x(2);
  la::Vector y(3);
  EXPECT_THROW(la::axpy(1.0, x, y), std::invalid_argument);
}

TEST(Blas1Waxpby, ThreeOperandForm) {
  la::Vector x{1.0, 2.0};
  la::Vector y{3.0, 4.0};
  la::Vector w;
  la::waxpby(2.0, x, -1.0, y, w);
  EXPECT_EQ(w[0], -1.0);
  EXPECT_EQ(w[1], 0.0);
}

TEST(Blas1Waxpby, OutputMayAliasInput) {
  la::Vector x{1.0, 2.0};
  la::Vector y{3.0, 4.0};
  la::waxpby(1.0, x, 1.0, y, y); // y := x + y
  EXPECT_EQ(y[0], 4.0);
  EXPECT_EQ(y[1], 6.0);
}

TEST(Blas1Scal, ScalesInPlace) {
  la::Vector x{1.0, -2.0};
  la::scal(-3.0, x);
  EXPECT_EQ(x[0], -3.0);
  EXPECT_EQ(x[1], 6.0);
}

TEST(Blas1Copy, ResizesDestination) {
  la::Vector x{1.0, 2.0, 3.0};
  la::Vector y;
  la::copy(x, y);
  EXPECT_EQ(y, x);
}

TEST(Blas1Hadamard, ElementWiseProduct) {
  la::Vector x{1.0, 2.0, 3.0};
  la::Vector y{2.0, 0.5, -1.0};
  la::Vector z;
  la::hadamard(x, y, z);
  EXPECT_EQ(z[0], 2.0);
  EXPECT_EQ(z[1], 1.0);
  EXPECT_EQ(z[2], -3.0);
}

TEST(Blas1Finite, AllFiniteOnCleanVector) {
  la::Vector v{1.0, -2.0, 0.0};
  EXPECT_TRUE(la::all_finite(v));
  EXPECT_EQ(la::count_nonfinite(v), 0u);
}

TEST(Blas1Finite, DetectsInf) {
  la::Vector v{1.0, kInf, 0.0};
  EXPECT_FALSE(la::all_finite(v));
  EXPECT_EQ(la::count_nonfinite(v), 1u);
}

TEST(Blas1Finite, DetectsNaN) {
  la::Vector v{kNaN, kNaN, 0.0};
  EXPECT_FALSE(la::all_finite(v));
  EXPECT_EQ(la::count_nonfinite(v), 2u);
}

TEST(Blas1Finite, NegativeInfCounts) {
  la::Vector v{-kInf};
  EXPECT_EQ(la::count_nonfinite(v), 1u);
}

// --- Fused dot_axpy (the MGS hot-path kernel) -------------------------------

TEST(Blas1DotAxpy, BitwiseMatchesUnfusedDotThenAxpyAtSerialSize) {
  // Below the OpenMP threshold both kernels accumulate in plain sequential
  // order, so equality is bitwise.  (Above the threshold the reduction's
  // combine order is thread-arrival-dependent; see the test below.)
  const std::size_t n = 4000;
  la::Vector q(n), v(n);
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = std::sin(0.31 * static_cast<double>(i));
    v[i] = std::cos(0.17 * static_cast<double>(i)) + 0.2;
  }
  la::Vector v_ref = v;
  const double h_ref = la::dot(q, v_ref);
  la::axpy(-h_ref, q, v_ref);

  const double h = la::dot_axpy(q.span(), v.span());
  EXPECT_EQ(h, h_ref);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(v[i], v_ref[i]) << "i=" << i;
  }
}

TEST(Blas1DotAxpy, MatchesUnfusedDotThenAxpyAboveParallelThreshold) {
  // Crosses the OpenMP threshold: with several threads, two separate
  // parallel reductions may combine partials in different orders, so only
  // near-equality (to reduction roundoff) is guaranteed here.
  const std::size_t n = 5000;
  la::Vector q(n), v(n);
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = std::sin(0.31 * static_cast<double>(i));
    v[i] = std::cos(0.17 * static_cast<double>(i)) + 0.2;
  }
  la::Vector v_ref = v;
  const double h_ref = la::dot(q, v_ref);
  la::axpy(-h_ref, q, v_ref);

  const double h = la::dot_axpy(q.span(), v.span());
  EXPECT_NEAR(h, h_ref, 1e-12 * (1.0 + std::abs(h_ref)));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(v[i], v_ref[i], 1e-12) << "i=" << i;
  }
}

TEST(Blas1DotAxpy, AdjustRunsOnceBetweenDotAndCorrection) {
  la::Vector q{1.0, 0.0, 0.0};
  la::Vector v{4.0, 2.0, 1.0};
  int calls = 0;
  const double h =
      la::dot_axpy(q.span(), v.span(), [&](double& c) {
        ++calls;
        EXPECT_DOUBLE_EQ(c, 4.0); // the freshly computed coefficient
        c = 1.0;                  // mutate: only 1.0 of the component removed
      });
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(h, 1.0);      // returns the mutated coefficient
  EXPECT_DOUBLE_EQ(v[0], 3.0);   // 4 - 1: mutated value applied
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(Blas1DotAxpy, SizeMismatchThrows) {
  la::Vector q(3), v(4);
  EXPECT_THROW((void)la::dot_axpy(q.span(), v.span()), std::invalid_argument);
}

TEST(Blas1SpanOverloads, MatchVectorOverloadsBitwise) {
  const std::size_t n = 4100;
  la::Vector x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(static_cast<double>(i) * 0.7);
    y[i] = std::cos(static_cast<double>(i) * 0.3);
  }
  EXPECT_EQ(la::dot(x.span(), y.span()), la::dot(x, y));
  EXPECT_EQ(la::nrm2(x.span()), la::nrm2(x));
  la::Vector y1 = y, y2 = y;
  la::axpy(0.37, x, y1);
  la::axpy(0.37, x.span(), y2.span());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y1[i], y2[i]);
}
