#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "experiment/scenario.hpp"
#include "experiment/sweep.hpp"
#include "gen/poisson.hpp"
#include "krylov/backend.hpp"
#include "la/blas1.hpp"
#include "sdc/fault_model.hpp"
#include "solver/registry.hpp"

namespace experiment = sdcgmres::experiment;
namespace gen = sdcgmres::gen;
namespace krylov = sdcgmres::krylov;
namespace la = sdcgmres::la;
namespace sdc = sdcgmres::sdc;
namespace solver = sdcgmres::solver;

using experiment::ScenarioSpec;

// ---------------------------------------------------------------------------
// Backend registry + key validation
// ---------------------------------------------------------------------------

TEST(BackendRegistry, ListsTheExpectedKeys) {
  const auto keys = solver::backend_registry().keys();
  ASSERT_GE(keys.size(), 3u);
  EXPECT_NE(std::find(keys.begin(), keys.end(), "csr"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "sell"), keys.end());
  EXPECT_NE(std::find(keys.begin(), keys.end(), "auto"), keys.end());
}

TEST(BackendRegistry, UnknownKeyThrowsListingKnownKeys) {
  try {
    solver::validate_backend_key("ellpack");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ellpack"), std::string::npos) << what;
    EXPECT_NE(what.find("csr"), std::string::npos) << what;
    EXPECT_NE(what.find("sell"), std::string::npos) << what;
    EXPECT_NE(what.find("auto"), std::string::npos) << what;
  }
}

TEST(BackendRegistry, SellGeometryIsValidated) {
  EXPECT_NO_THROW(solver::validate_backend_key("sell"));
  EXPECT_NO_THROW(solver::validate_backend_key("sell:4"));
  EXPECT_NO_THROW(solver::validate_backend_key("sell:8:4"));
  EXPECT_NO_THROW(solver::validate_backend_key("sell:256:1"));
  EXPECT_THROW(solver::validate_backend_key("sell:0"),
               std::invalid_argument);
  EXPECT_THROW(solver::validate_backend_key("sell:257"),
               std::invalid_argument);
  EXPECT_THROW(solver::validate_backend_key("sell:8:0"),
               std::invalid_argument);
  EXPECT_THROW(solver::validate_backend_key("sell:x"),
               std::invalid_argument);
  EXPECT_THROW(solver::validate_backend_key("sell:8:4:2"),
               std::invalid_argument);
}

TEST(BackendRegistry, UnknownBackendInSpecFailsBeforeAnySolve) {
  // sweep_config_from_spec validates the key up front, so the error
  // surfaces from run_scenario with the known-key listing.
  try {
    (void)experiment::run_scenario(
        "matrix=poisson n=6 inner=5 sweep=1 fault=class1 backend=ellpack");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ellpack"), std::string::npos) << what;
    EXPECT_NE(what.find("sell"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// Bitwise identity: every backend runs the same solve
// ---------------------------------------------------------------------------

namespace {

void expect_same_scenario(const experiment::ScenarioResult& a,
                          const experiment::ScenarioResult& b) {
  EXPECT_EQ(a.report.status, b.report.status);
  EXPECT_EQ(a.report.iterations, b.report.iterations);
  EXPECT_EQ(a.report.residual_norm, b.report.residual_norm);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    ASSERT_EQ(a.x[i], b.x[i]) << "x[" << i << "]";
  }
}

} // namespace

TEST(BackendIdentity, SingleSolveSellMatchesCsrBitwise) {
  const char* base = "solver=ft_gmres matrix=poisson n=8 inner=6";
  const auto csr =
      experiment::run_scenario(std::string(base) + " backend=csr");
  EXPECT_EQ(csr.backend_name, "csr");
  EXPECT_TRUE(csr.backend_decision.empty());
  for (const char* key : {"sell", "sell:4:1", "sell:4:4", "sell:8:4"}) {
    const auto sell =
        experiment::run_scenario(std::string(base) + " backend=" + key);
    EXPECT_EQ(sell.backend_name, std::string("sell") == key ? "sell:8:1" : key)
        << key;
    expect_same_scenario(csr, sell);
  }
}

TEST(BackendIdentity, SweepPointsIdenticalAcrossBackendsThreadsAndBatch) {
  const char* base =
      "matrix=poisson n=6 inner=5 sweep=1 fault=class1 position=first "
      "detector=bound";
  const auto csr = experiment::run_injection_sweep(
      ScenarioSpec::parse(std::string(base) + " backend=csr"));
  const auto sell = experiment::run_injection_sweep(
      ScenarioSpec::parse(std::string(base) + " backend=sell"));
  EXPECT_EQ(csr.points, sell.points);
  EXPECT_EQ(csr.baseline_outer, sell.baseline_outer);
  EXPECT_EQ(csr.baseline_total_inner, sell.baseline_total_inner);

  // Parallel/batched execution must not perturb the SELL results either.
  const auto threaded = experiment::run_injection_sweep(ScenarioSpec::parse(
      std::string(base) + " backend=sell:4:4 threads=2 batch=4"));
  EXPECT_EQ(csr.points, threaded.points);
  EXPECT_EQ(csr.baseline_outer, threaded.baseline_outer);
}

TEST(BackendIdentity, PreassembledBackendSeamMatchesRegistryAssembly) {
  // The service hands run_injection_sweep a cached backend through
  // SweepConfig::backend; it must behave exactly like key assembly.
  const auto A = gen::poisson2d(6);
  experiment::SweepConfig by_key;
  by_key.solver.inner.max_iters = 5;
  by_key.model = sdcgmres::sdc::fault_classes::very_large();
  by_key.backend_key = "sell:4:1";
  experiment::SweepConfig pre = by_key;
  pre.backend = solver::backend_registry().make("sell:4:1", A);
  const auto b = sdcgmres::la::ones(A.rows());
  const auto r1 = experiment::run_injection_sweep(A, b, by_key);
  const auto r2 = experiment::run_injection_sweep(A, b, pre);
  EXPECT_EQ(r1.points, r2.points);
  EXPECT_EQ(r1.baseline_outer, r2.baseline_outer);
}

// ---------------------------------------------------------------------------
// Autotuner
// ---------------------------------------------------------------------------

TEST(BackendAuto, RecordsDecisionAndResolvesToARealBackend) {
  const auto result = experiment::run_scenario(
      "solver=ft_gmres matrix=poisson n=8 inner=6 backend=auto");
  EXPECT_FALSE(result.backend_decision.empty());
  EXPECT_TRUE(result.backend_name == "csr" ||
              result.backend_name.rfind("sell", 0) == 0)
      << result.backend_name;
  // Whatever it picked, the answer is the CSR answer.
  const auto csr = experiment::run_scenario(
      "solver=ft_gmres matrix=poisson n=8 inner=6 backend=csr");
  expect_same_scenario(csr, result);
}

TEST(BackendAuto, PoissonPicksSellAndDecisionExplainsWhy) {
  // poisson2d has ~5 nnz/row and near-uniform rows: the autotuner's
  // documented rule (mean >= 4, padding <= 1.25) must choose SELL.
  const auto A = gen::poisson2d(8);
  const auto backend = solver::backend_registry().make("auto", A);
  EXPECT_EQ(backend->name().rfind("sell", 0), 0u) << backend->name();
  EXPECT_NE(backend->decision().find("sell"), std::string::npos)
      << backend->decision();
}
