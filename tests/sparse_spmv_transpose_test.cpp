/// \file sparse_spmv_transpose_test.cpp
/// \brief A^T x under the column-ownership parallelization: correctness
/// against the explicit transposed matrix, and bitwise identity between
/// the threaded path and the serial fallback (the parallel scheme owns
/// disjoint contiguous column ranges and accumulates each column in the
/// serial row order, so no tolerance is needed).

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>

#include "gen/convection_diffusion.hpp"
#include "gen/poisson.hpp"
#include "la/krylov_basis.hpp"
#include "la/vector.hpp"
#include "sparse/csr.hpp"

namespace sparse = sdcgmres::sparse;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

la::Vector test_vec(std::size_t n, double phase) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.7 * static_cast<double>(i + 1) + phase);
    if (i % 17 == 0) v[i] = 0.0; // exercise the xi == 0 skip
  }
  return v;
}

} // namespace

TEST(SpmvTranspose, MatchesExplicitTranspose) {
  const auto A = gen::convection_diffusion2d(40, 1.0, 0.3); // nonsymmetric
  const auto At = A.transposed();
  const la::Vector x = test_vec(A.rows(), 0.4);
  la::Vector y_t, y_ref;
  A.spmv_transpose(x, y_t);
  At.spmv(x, y_ref);
  ASSERT_EQ(y_t.size(), y_ref.size());
  for (std::size_t j = 0; j < y_t.size(); ++j) {
    EXPECT_NEAR(y_t[j], y_ref[j], 1e-14) << j;
  }
}

TEST(SpmvTranspose, ThreadedIsBitwiseIdenticalToSerial) {
  // nnz = 65,312 > the 16,384 parallel threshold, so with >1 OpenMP
  // thread the column-ownership path runs; forcing one thread takes the
  // serial fallback.  The two must agree bitwise: each output column
  // accumulates its terms in the same ascending row order either way.
  const auto A = gen::convection_diffusion2d(115, 0.8, -0.4); // n = 13225
  ASSERT_GT(A.nnz(), 16384u);
  const la::Vector x = test_vec(A.rows(), 1.7);

#ifdef _OPENMP
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
#endif
  la::Vector y_serial;
  A.spmv_transpose(x, y_serial);
#ifdef _OPENMP
  omp_set_num_threads(saved > 1 ? saved : 4);
#endif
  la::Vector y_threaded;
  A.spmv_transpose(x, y_threaded);
#ifdef _OPENMP
  omp_set_num_threads(saved);
#endif

  ASSERT_EQ(y_threaded.size(), y_serial.size());
  for (std::size_t j = 0; j < y_serial.size(); ++j) {
    // EXPECT_EQ, not NEAR: the contract is bitwise determinism.
    EXPECT_EQ(y_threaded[j], y_serial[j]) << j;
  }
}

TEST(SpmvTranspose, RectangularAndEmptyOperands) {
  // poisson1d is square but tiny; build a rectangular case from its
  // transpose-of-transpose to make sure the serial path resizes y.
  const auto A = gen::poisson2d(6);
  la::Vector x(A.rows());
  x.fill(0.0);
  la::Vector y;
  A.spmv_transpose(x, y);
  ASSERT_EQ(y.size(), A.cols());
  for (std::size_t j = 0; j < y.size(); ++j) EXPECT_EQ(y[j], 0.0) << j;
}

// --- fused transpose SpMM --------------------------------------------------

namespace {

la::KrylovBasis operand_block(std::size_t n, std::size_t b, double phase) {
  la::KrylovBasis x(n, b);
  for (std::size_t c = 0; c < b; ++c) {
    std::span<double> col = x.append();
    for (std::size_t i = 0; i < n; ++i) {
      col[i] = std::cos(0.9 * static_cast<double>(i + 1) +
                        phase * static_cast<double>(c + 1));
      if ((i + c) % 13 == 0) col[i] = 0.0; // per-column x_i == 0 skip
    }
  }
  return x;
}

void expect_fused_matches_per_column(const sparse::CsrMatrix& A,
                                     std::size_t b) {
  const la::KrylovBasis x = operand_block(A.rows(), b, 0.6);
  la::KrylovBasis y(A.cols(), b);
  for (std::size_t c = 0; c < b; ++c) (void)y.append();
  A.spmm_transpose(x.view(), y);

  la::Vector ref;
  for (std::size_t c = 0; c < b; ++c) {
    A.spmv_transpose(x.col(c), ref);
    const std::span<const double> got = y.col(c);
    for (std::size_t j = 0; j < A.cols(); ++j) {
      // EXPECT_EQ, not NEAR: each fused output column must accumulate in
      // exactly spmv_transpose's serial order (the guarantee that keeps
      // the fused two-norm calibration bitwise identical).
      EXPECT_EQ(got[j], ref[j]) << "column " << c << ", row " << j;
    }
  }
}

} // namespace

TEST(SpmmTranspose, BitwiseMatchesColumnwiseSpmvTranspose) {
  const auto A = gen::convection_diffusion2d(23, 1.1, -0.6); // nonsymmetric
  for (const std::size_t b : {1u, 2u, 3u, 4u, 5u, 8u, 11u}) {
    expect_fused_matches_per_column(A, b);
  }
}

TEST(SpmmTranspose, ThreadedIsBitwiseIdenticalToPerColumn) {
  // Above the 16,384-nnz threshold the fused path takes the
  // column-ownership parallelization; the per-column reference inside
  // expect_fused_matches_per_column is itself threaded there too, and
  // both must still land on identical bits.
  const auto A = gen::convection_diffusion2d(115, 0.8, -0.4);
  ASSERT_GT(A.nnz(), 16384u);
  expect_fused_matches_per_column(A, 5);
}

TEST(SpmmTranspose, ZeroColumnBlockIsANoOp) {
  const auto A = gen::poisson2d(6);
  // Raw core: must return before any pointer arithmetic.
  A.spmm_transpose(/*ncols=*/0, /*x=*/nullptr, /*ldx=*/0, /*y=*/nullptr,
                   /*ldy=*/0);
  // View overload: empty operand against empty result is legal.
  la::KrylovBasis x(A.rows(), 4);
  la::KrylovBasis y(A.cols(), 4);
  A.spmm_transpose(x.view(0), y);
  EXPECT_EQ(y.cols(), 0u);
  A.spmm_transpose(la::BasisView(), y);
}

TEST(SpmmTranspose, RejectsShapeMismatches) {
  const auto A = gen::poisson2d(5);
  la::KrylovBasis bad_rows(A.rows() + 1, 2);
  (void)bad_rows.append();
  (void)bad_rows.append();
  la::KrylovBasis y(A.cols(), 2);
  (void)y.append();
  (void)y.append();
  EXPECT_THROW(A.spmm_transpose(bad_rows.view(), y), std::invalid_argument);

  la::KrylovBasis x(A.rows(), 2);
  (void)x.append();
  (void)x.append();
  la::KrylovBasis y_short(A.cols(), 2);
  (void)y_short.append(); // one column only: count mismatch
  EXPECT_THROW(A.spmm_transpose(x.view(), y_short), std::invalid_argument);
}
