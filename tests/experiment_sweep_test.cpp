#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "experiment/report.hpp"
#include "experiment/sweep.hpp"
#include "gen/poisson.hpp"
#include "la/blas1.hpp"

namespace experiment = sdcgmres::experiment;
namespace krylov = sdcgmres::krylov;
namespace sdc = sdcgmres::sdc;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

experiment::SweepConfig small_config() {
  experiment::SweepConfig config;
  config.solver.inner.max_iters = 5;
  config.solver.outer.tol = 1e-8;
  config.solver.outer.max_outer = 120;
  return config;
}

} // namespace

TEST(Sweep, BaselineMatchesDirectSolve) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  const auto config = small_config();
  const auto direct = experiment::run_baseline(A, b, config.solver);
  const auto sweep = experiment::run_injection_sweep(A, b, config);
  EXPECT_TRUE(sweep.baseline_converged);
  EXPECT_EQ(sweep.baseline_outer, direct.outer_iterations);
  EXPECT_EQ(sweep.baseline_total_inner, direct.total_inner_iterations);
}

TEST(Sweep, OnePointPerInjectionSite) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  const auto sweep = experiment::run_injection_sweep(A, b, small_config());
  EXPECT_EQ(sweep.points.size(), sweep.baseline_total_inner);
  for (std::size_t s = 0; s < sweep.points.size(); ++s) {
    EXPECT_EQ(sweep.points[s].aggregate_iteration, s);
  }
}

TEST(Sweep, StrideSamplesSites) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  auto config = small_config();
  config.stride = 4;
  const auto sweep = experiment::run_injection_sweep(A, b, config);
  EXPECT_EQ(sweep.points.size(),
            (sweep.baseline_total_inner + 3) / 4);
  EXPECT_EQ(sweep.points[1].aggregate_iteration, 4u);
}

TEST(Sweep, SiteLimitRestrictsSweep) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  auto config = small_config();
  config.site_limit = 7;
  const auto sweep = experiment::run_injection_sweep(A, b, config);
  ASSERT_EQ(sweep.points.size(), 7u);
  EXPECT_EQ(sweep.points.back().aggregate_iteration, 6u);
  // The baseline is still the full failure-free run.
  EXPECT_GT(sweep.baseline_total_inner, 7u);
}

TEST(Sweep, SolverErrorsInsideTheEngineStillThrow) {
  // Solver-side validation errors fire inside the sweep's OpenMP regions;
  // the engine must convert them back into normal exceptions rather than
  // letting them terminate the process at the region boundary.
  const auto A = gen::poisson2d(4);
  const la::Vector wrong_b = la::ones(7); // size mismatch vs n = 16
  auto config = small_config();
  EXPECT_THROW((void)experiment::run_injection_sweep(A, wrong_b, config),
               std::invalid_argument);
  EXPECT_THROW((void)experiment::run_baseline(A, wrong_b, config.solver),
               std::invalid_argument);
  config.threads = 3;
  EXPECT_THROW((void)experiment::run_injection_sweep(A, wrong_b, config),
               std::invalid_argument);
}

TEST(Sweep, ZeroStrideThrows) {
  const auto A = gen::poisson2d(4);
  auto config = small_config();
  config.stride = 0;
  EXPECT_THROW(
      (void)experiment::run_injection_sweep(A, la::ones(16), config),
      std::invalid_argument);
}

TEST(Sweep, DetectorWithoutBoundThrows) {
  const auto A = gen::poisson2d(4);
  auto config = small_config();
  config.with_detector = true;
  config.detector_bound = 0.0;
  EXPECT_THROW(
      (void)experiment::run_injection_sweep(A, la::ones(16), config),
      std::invalid_argument);
}

TEST(Sweep, SmallFaultsBarelyPerturbConvergence) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  auto config = small_config();
  config.model = sdc::fault_classes::nearly_zero();
  config.stride = 3;
  const auto sweep = experiment::run_injection_sweep(A, b, config);
  EXPECT_EQ(sweep.failed_runs(), 0u);
  EXPECT_LE(sweep.max_outer_increase(), 3u);
}

TEST(Sweep, DetectorCatchesAllFiredClass1Faults) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  auto config = small_config();
  config.model = sdc::fault_classes::very_large();
  config.position = sdc::MgsPosition::Last; // diagonal coefficients: nonzero
  config.with_detector = true;
  config.detector_bound = A.frobenius_norm();
  config.stride = 3;
  const auto sweep = experiment::run_injection_sweep(A, b, config);
  for (const auto& p : sweep.points) {
    if (p.injected) {
      EXPECT_TRUE(p.detected) << "site " << p.aggregate_iteration;
    }
    EXPECT_TRUE(p.converged) << "site " << p.aggregate_iteration;
  }
  EXPECT_GT(sweep.detected_runs(), 0u);
}

TEST(Sweep, ParallelSweepIsIdenticalToSerial) {
  // The parallel engine must be a pure speedup: same points, same order,
  // same doubles.  Every SweepPoint field participates via operator==.
  const auto A = gen::poisson2d(7);
  const la::Vector b = la::ones(49);
  auto config = small_config();
  config.solver.inner.max_iters = 6;
  config.model = sdc::fault_classes::very_large();

  config.threads = 1;
  const auto serial = experiment::run_injection_sweep(A, b, config);
  config.threads = 4;
  const auto parallel = experiment::run_injection_sweep(A, b, config);

  EXPECT_EQ(parallel.baseline_outer, serial.baseline_outer);
  EXPECT_EQ(parallel.baseline_total_inner, serial.baseline_total_inner);
  EXPECT_EQ(parallel.baseline_converged, serial.baseline_converged);
  ASSERT_EQ(parallel.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(parallel.points[i], serial.points[i]) << "site index " << i;
  }
}

TEST(Sweep, ParallelSweepIsIdenticalToSerialWithDetector) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  auto config = small_config();
  config.model = sdc::fault_classes::very_large();
  config.position = sdc::MgsPosition::Last;
  config.with_detector = true;
  config.detector_bound = A.frobenius_norm();

  config.threads = 1;
  const auto serial = experiment::run_injection_sweep(A, b, config);
  config.threads = 0; // all hardware threads
  const auto parallel = experiment::run_injection_sweep(A, b, config);

  ASSERT_EQ(parallel.points.size(), serial.points.size());
  EXPECT_TRUE(parallel.points == serial.points);
  EXPECT_EQ(parallel.detected_runs(), serial.detected_runs());
}

TEST(Sweep, BatchedSweepIsIdenticalToSolo) {
  // Multi-RHS lockstep batching must be a pure traffic optimization:
  // every SweepPoint of a batch=4 sweep equals the batch=1 run bitwise,
  // for both fault classes and both MGS positions of the paper protocol.
  const auto A = gen::poisson2d(7);
  const la::Vector b = la::ones(49);
  const sdc::FaultModel models[] = {sdc::fault_classes::very_large(),
                                    sdc::fault_classes::slightly_smaller()};
  const sdc::MgsPosition positions[] = {sdc::MgsPosition::First,
                                        sdc::MgsPosition::Last};
  for (const auto& model : models) {
    for (const auto position : positions) {
      auto config = small_config();
      config.solver.inner.max_iters = 6;
      config.model = model;
      config.position = position;

      config.batch = 1;
      const auto solo = experiment::run_injection_sweep(A, b, config);
      config.batch = 4;
      const auto batched = experiment::run_injection_sweep(A, b, config);

      EXPECT_EQ(batched.baseline_outer, solo.baseline_outer);
      EXPECT_EQ(batched.baseline_total_inner, solo.baseline_total_inner);
      ASSERT_EQ(batched.points.size(), solo.points.size());
      for (std::size_t i = 0; i < solo.points.size(); ++i) {
        EXPECT_EQ(batched.points[i], solo.points[i]) << "site index " << i;
      }
    }
  }
}

TEST(Sweep, BatchedSweepWithDetectorIsIdenticalToSolo) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  for (const auto response :
       {sdc::DetectorResponse::AbortSolve, sdc::DetectorResponse::RecordOnly}) {
    auto config = small_config();
    config.model = sdc::fault_classes::very_large();
    config.with_detector = true;
    config.detector_bound = A.frobenius_norm();
    config.detector_response = response;

    config.batch = 1;
    const auto solo = experiment::run_injection_sweep(A, b, config);
    config.batch = 3;
    const auto batched = experiment::run_injection_sweep(A, b, config);

    ASSERT_EQ(batched.points.size(), solo.points.size());
    EXPECT_TRUE(batched.points == solo.points);
    EXPECT_EQ(batched.detected_runs(), solo.detected_runs());
    EXPECT_GT(batched.detected_runs(), 0u); // class 1 is detectable
  }
}

TEST(Sweep, BatchedAndThreadedSweepIsIdenticalToSerialSolo) {
  // The two axes compose: threads=N batch=B must still reproduce the
  // serial batch=1 points exactly (each worker's blocks are independent
  // lockstep groups; kernel threading stays pinned).
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  auto config = small_config();
  config.model = sdc::fault_classes::very_large();

  config.threads = 1;
  config.batch = 1;
  const auto reference = experiment::run_injection_sweep(A, b, config);
  for (const std::size_t threads : {1u, 3u}) {
    for (const std::size_t batch : {2u, 5u}) {
      config.threads = threads;
      config.batch = batch;
      const auto run = experiment::run_injection_sweep(A, b, config);
      ASSERT_EQ(run.points.size(), reference.points.size());
      EXPECT_TRUE(run.points == reference.points)
          << "threads=" << threads << " batch=" << batch;
    }
  }
}

TEST(Sweep, BatchLargerThanSiteCountStillMatchesSolo) {
  // One ragged block covering the whole sweep (batch > n_points) plus an
  // early-dropout mix: sites that converge at different outer counts
  // leave the block at different iterations.
  const auto A = gen::poisson2d(5);
  const la::Vector b = la::ones(25);
  auto config = small_config();
  config.model = sdc::fault_classes::very_large();

  config.batch = 1;
  const auto solo = experiment::run_injection_sweep(A, b, config);
  config.batch = solo.points.size() + 7;
  const auto batched = experiment::run_injection_sweep(A, b, config);
  EXPECT_TRUE(batched.points == solo.points);
}

TEST(Sweep, SummaryCountsAreConsistent) {
  const auto A = gen::poisson2d(5);
  const la::Vector b = la::ones(25);
  auto config = small_config();
  config.stride = 2;
  const auto sweep = experiment::run_injection_sweep(A, b, config);
  EXPECT_LE(sweep.unchanged_runs(), sweep.points.size());
  EXPECT_LE(sweep.failed_runs(), sweep.points.size());
  EXPECT_EQ(sweep.detected_runs(), 0u); // no detector attached
}

TEST(Report, Table1ContainsHeadersAndNames) {
  const auto A = gen::poisson2d(5);
  const auto report = experiment::characterize("poisson-5", A,
                                               /*estimate_condition=*/false);
  std::ostringstream out;
  experiment::print_table1(out, {report});
  const std::string text = out.str();
  EXPECT_NE(text.find("TABLE I"), std::string::npos);
  EXPECT_NE(text.find("poisson-5"), std::string::npos);
  EXPECT_NE(text.find("||A||_F"), std::string::npos);
  EXPECT_NE(text.find("symmetric"), std::string::npos);
}

TEST(Report, CharacterizeMatchesMatrixFacts) {
  const auto A = gen::poisson2d(5);
  const auto report = experiment::characterize("p", A, false);
  EXPECT_EQ(report.properties.rows, 25u);
  EXPECT_TRUE(report.positive_definite);
  EXPECT_NEAR(report.frobenius_norm, A.frobenius_norm(), 1e-12);
  EXPECT_GT(report.two_norm_estimate, 0.0);
  EXPECT_EQ(report.condition_estimate, 0.0); // skipped
}

TEST(Report, SweepCsvHasHeaderAndRows) {
  const auto A = gen::poisson2d(4);
  auto config = small_config();
  config.stride = 5;
  const auto sweep =
      experiment::run_injection_sweep(A, la::ones(16), config);
  std::ostringstream out;
  experiment::write_sweep_csv(out, sweep);
  const std::string text = out.str();
  EXPECT_NE(text.find("site,outer_iterations"), std::string::npos);
  // header + one line per point
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, sweep.points.size() + 1);
}

TEST(Report, SeriesAndSummaryDoNotThrow) {
  const auto A = gen::poisson2d(4);
  auto config = small_config();
  config.stride = 5;
  const auto sweep =
      experiment::run_injection_sweep(A, la::ones(16), config);
  std::ostringstream out;
  EXPECT_NO_THROW(experiment::print_sweep_series(out, "title", sweep, 5));
  EXPECT_NO_THROW(experiment::print_sweep_summary(out, "title", sweep));
  EXPECT_NE(out.str().find("failure-free outer iterations"),
            std::string::npos);
}

TEST(SweepValidation, StrideZeroRejectedUpFront) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);
  auto config = small_config();
  config.stride = 0;
  EXPECT_THROW((void)experiment::run_injection_sweep(A, b, config),
               std::invalid_argument);
  EXPECT_THROW(experiment::validate_sweep_config(config),
               std::invalid_argument);
}

TEST(SweepValidation, ZeroBatchRejectedUpFront) {
  auto config = small_config();
  config.batch = 0;
  EXPECT_THROW(experiment::validate_sweep_config(config),
               std::invalid_argument);
  const auto A = gen::poisson2d(4);
  const la::Vector b = la::ones(16);
  EXPECT_THROW((void)experiment::run_injection_sweep(A, b, config),
               std::invalid_argument);
}

TEST(SweepValidation, DetectorWithoutBoundRejectedUpFront) {
  auto config = small_config();
  config.with_detector = true; // detector_bound stays 0.0
  EXPECT_THROW(experiment::validate_sweep_config(config),
               std::invalid_argument);
  config.detector_bound = -1.0;
  EXPECT_THROW(experiment::validate_sweep_config(config),
               std::invalid_argument);
  config.detector_bound = 50.0;
  EXPECT_NO_THROW(experiment::validate_sweep_config(config));
}

TEST(SweepValidation, ZeroInnerBudgetRejectedUpFront) {
  auto config = small_config();
  config.solver.inner.max_iters = 0; // no injectable sites can exist
  EXPECT_THROW(experiment::validate_sweep_config(config),
               std::invalid_argument);
}

TEST(SweepValidation, ZeroSelectedSitesThrowInsteadOfEmptySweep) {
  // b = 0 converges instantly: zero inner iterations, so the site set is
  // empty for every site_limit/stride combination -- loud failure, not a
  // silent empty SweepResult.
  const auto A = gen::poisson2d(6);
  const la::Vector b(36);
  EXPECT_THROW((void)experiment::run_injection_sweep(A, b, small_config()),
               std::invalid_argument);
}

TEST(Sweep, BatchedSweepCutsMatrixStreamsNotColumns) {
  // The measured-traffic contract of the inner-lockstep engine, at the
  // sweep level: batching leaves the operand-column count (the work)
  // untouched and divides the matrix-stream count (the traffic) by ~batch,
  // while every point stays bitwise identical.
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(A.rows());
  auto config = small_config();
  config.model = sdc::FaultModel::scale(1e150);

  const auto solo = experiment::run_injection_sweep(A, b, config);
  config.batch = 4;
  const auto batched = experiment::run_injection_sweep(A, b, config);

  EXPECT_EQ(batched.points, solo.points);
  EXPECT_GT(solo.points[0].inner_applies, 0u);
  EXPECT_EQ(batched.inner_operand_columns(), solo.inner_operand_columns());
  EXPECT_EQ(batched.operator_stats.columns(), solo.operator_stats.columns());
  // The inner solves dominate the columns (inner budget vs one outer
  // product per iteration), which is why inner-level lockstep matters.
  EXPECT_GT(2 * solo.inner_operand_columns(),
            solo.operator_stats.columns());
  EXPECT_EQ(solo.operator_stats.apply_block_calls, 0u);
  EXPECT_GT(batched.operator_stats.apply_block_calls, 0u);
  EXPECT_LT(2 * batched.operator_stats.streams(),
            solo.operator_stats.streams());
}

TEST(Sweep, AbortingDetectorUnderThreadsAndBatchStaysIdentical) {
  // threads=N batch=B == serial batch=1 with an inner-abort-inducing
  // fault model: class-1 faults exceed ||A||_F, so the abort-response
  // detector terminates inner solves mid-block at many sites.
  const auto A = gen::poisson2d(7);
  const la::Vector b = la::ones(A.rows());
  auto config = small_config();
  config.model = sdc::FaultModel::scale(1e150);
  config.with_detector = true;
  config.detector_bound = A.frobenius_norm();
  config.detector_response = sdc::DetectorResponse::AbortSolve;

  const auto serial = experiment::run_injection_sweep(A, b, config);
  EXPECT_GT(serial.detected_runs(), 0u);

  config.threads = 3;
  config.batch = 3;
  const auto batched = experiment::run_injection_sweep(A, b, config);
  EXPECT_EQ(batched.points, serial.points);
  EXPECT_EQ(batched.baseline_outer, serial.baseline_outer);
  EXPECT_EQ(batched.baseline_total_inner, serial.baseline_total_inner);
}

TEST(Sweep, RetryReliableHealsEveryDetectedSiteAndStaysIdentical) {
  // retry_reliable under threads+batch: the healed sweep is bitwise
  // identical to serial AND every detected site converges in the
  // failure-free outer count (the whole point of the policy).
  const auto A = gen::poisson2d(7);
  const la::Vector b = la::ones(A.rows());
  auto config = small_config();
  config.model = sdc::FaultModel::scale(1e150);
  config.with_detector = true;
  config.detector_bound = A.frobenius_norm();
  config.detector_response = sdc::DetectorResponse::RetryReliable;

  const auto serial = experiment::run_injection_sweep(A, b, config);
  EXPECT_GT(serial.detected_runs(), 0u);
  EXPECT_EQ(serial.retried_reliable(), serial.detected_runs());
  EXPECT_EQ(serial.max_outer_increase(), 0u);
  EXPECT_EQ(serial.failed_runs(), 0u);

  config.threads = 3;
  config.batch = 3;
  const auto batched = experiment::run_injection_sweep(A, b, config);
  EXPECT_EQ(batched.points, serial.points);
  EXPECT_EQ(batched.baseline_outer, serial.baseline_outer);
  EXPECT_EQ(batched.baseline_total_inner, serial.baseline_total_inner);
}

TEST(Sweep, RestartOuterUnderThreadsAndBatchStaysIdentical) {
  const auto A = gen::poisson2d(7);
  const la::Vector b = la::ones(A.rows());
  auto config = small_config();
  config.model = sdc::FaultModel::scale(1e150);
  config.with_detector = true;
  config.detector_bound = A.frobenius_norm();
  config.detector_response = sdc::DetectorResponse::RestartOuter;

  const auto serial = experiment::run_injection_sweep(A, b, config);
  EXPECT_GT(serial.detected_runs(), 0u);
  EXPECT_EQ(serial.restarted_outer(), serial.detected_runs());

  config.threads = 3;
  config.batch = 3;
  const auto batched = experiment::run_injection_sweep(A, b, config);
  EXPECT_EQ(batched.points, serial.points);
  EXPECT_EQ(batched.baseline_outer, serial.baseline_outer);
  EXPECT_EQ(batched.baseline_total_inner, serial.baseline_total_inner);
}
