#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "sdc/bits.hpp"

namespace sdc = sdcgmres::sdc;

TEST(Bits, RoundTripThroughInteger) {
  const double x = -123.456;
  EXPECT_EQ(sdc::from_bits(sdc::to_bits(x)), x);
}

TEST(Bits, SignBitFlipNegates) {
  EXPECT_EQ(sdc::flip_bit(1.5, 63), -1.5);
  EXPECT_EQ(sdc::flip_bit(-2.0, 63), 2.0);
}

TEST(Bits, FlipIsInvolution) {
  const double x = 3.14159;
  for (const unsigned bit : {0u, 17u, 52u, 62u, 63u}) {
    EXPECT_EQ(sdc::flip_bit(sdc::flip_bit(x, bit), bit), x);
  }
}

TEST(Bits, TopExponentFlipOfOneGivesInfinity) {
  // 1.0 has biased exponent 0x3FF (01111111111); setting bit 62 makes the
  // exponent all-ones with a zero mantissa, which is exactly +Inf -- the
  // classic "flip a high exponent bit, get a non-numeric value" SDC.
  const double y = sdc::flip_bit(1.0, 62);
  EXPECT_TRUE(std::isinf(y));
  EXPECT_GT(y, 0.0);
}

TEST(Bits, SecondExponentBitFlipIsTinyButFinite) {
  // Bit 61 of 1.0 is set (exponent 0x3FF); clearing it drops the exponent
  // to 0x1FF, a 2^-512 scale change that stays representable.
  const double y = sdc::flip_bit(1.0, 61);
  EXPECT_TRUE(std::isfinite(y));
  EXPECT_GT(y, 0.0);
  EXPECT_LT(y, 1e-150);
}

TEST(Bits, MantissaFlipIsSmallRelativePerturbation) {
  const double x = 1.0;
  const double y = sdc::flip_bit(x, 0); // least significant mantissa bit
  EXPECT_NE(x, y);
  EXPECT_NEAR(y, x, 1e-15);
}

TEST(Bits, OutOfRangeBitThrows) {
  EXPECT_THROW((void)sdc::flip_bit(1.0, 64), std::out_of_range);
}

TEST(Bits, ClassifyCoversAllClasses) {
  EXPECT_EQ(sdc::classify(0.0), sdc::ValueClass::Zero);
  EXPECT_EQ(sdc::classify(5e-310), sdc::ValueClass::Subnormal);
  EXPECT_EQ(sdc::classify(1.0), sdc::ValueClass::Normal);
  EXPECT_EQ(sdc::classify(std::numeric_limits<double>::infinity()),
            sdc::ValueClass::Infinite);
  EXPECT_EQ(sdc::classify(std::nan("")), sdc::ValueClass::NaN);
}

TEST(Bits, ClassNamesAreStable) {
  EXPECT_STREQ(sdc::to_string(sdc::ValueClass::Zero), "zero");
  EXPECT_STREQ(sdc::to_string(sdc::ValueClass::NaN), "nan");
  EXPECT_STREQ(sdc::to_string(sdc::ValueClass::Infinite), "infinite");
}

TEST(Bits, BitPatternLayout) {
  // 1.0 = 0 | 01111111111 | 52 zeros.
  const std::string s = sdc::bit_pattern(1.0);
  ASSERT_EQ(s.size(), 66u); // 64 bits + 2 separators
  EXPECT_EQ(s[0], '0');     // sign
  EXPECT_EQ(s[1], '|');
  EXPECT_EQ(s.substr(2, 11), "01111111111"); // exponent 0x3FF
  EXPECT_EQ(s[13], '|');
}

TEST(Bits, PaperClaimBitFlipsAreJustValues) {
  // The paper's argument (Section III-A-2): any flipped double is a
  // representable value (number, Inf, or NaN) -- the fault's *effect* is a
  // value change that SetValue could reproduce.
  for (unsigned bit = 0; bit < 64; ++bit) {
    const double y = sdc::flip_bit(0.75, bit);
    const auto c = sdc::classify(y);
    EXPECT_TRUE(c == sdc::ValueClass::Zero || c == sdc::ValueClass::Normal ||
                c == sdc::ValueClass::Subnormal ||
                c == sdc::ValueClass::Infinite || c == sdc::ValueClass::NaN);
  }
}
