/// \file solver_facade_test.cpp
/// \brief The façade contract: every IterativeSolver adapter is bitwise
/// identical to the free-function solver it wraps, options translate
/// exactly, and hook seams behave.

#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/poisson.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/cg.hpp"
#include "krylov/fcg.hpp"
#include "krylov/fgmres.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/gmres.hpp"
#include "krylov/ilu0.hpp"
#include "krylov/operator.hpp"
#include "la/blas1.hpp"
#include "sdc/injection.hpp"
#include "solver/solver.hpp"

namespace solver = sdcgmres::solver;
namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace sdc = sdcgmres::sdc;
namespace la = sdcgmres::la;
using sdcgmres::sparse::CsrMatrix;

namespace {

void expect_bitwise_equal(const la::Vector& a, const la::Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "element " << i;
  }
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "entry " << i;
  }
}

} // namespace

TEST(OptionsTranslation, DefaultsMatchNativeDefaults) {
  const solver::Options o;
  const auto g = solver::to_gmres_options(o);
  EXPECT_EQ(g.max_iters, krylov::GmresOptions{}.max_iters);
  EXPECT_EQ(g.lsq_policy, krylov::GmresOptions{}.lsq_policy);
  EXPECT_EQ(g.breakdown_tol, krylov::GmresOptions{}.breakdown_tol);

  const auto f = solver::to_fgmres_options(o);
  EXPECT_EQ(f.max_outer, krylov::FgmresOptions{}.max_outer);
  EXPECT_EQ(f.lsq_policy, krylov::FgmresOptions{}.lsq_policy);
  EXPECT_EQ(f.breakdown_tol, krylov::FgmresOptions{}.breakdown_tol);

  const auto ft = solver::to_ft_gmres_options(o);
  EXPECT_EQ(ft.inner.max_iters, krylov::FtGmresOptions{}.inner.max_iters);
  EXPECT_EQ(ft.inner.tol, krylov::FtGmresOptions{}.inner.tol);

  EXPECT_EQ(solver::to_cg_options(o).max_iters, krylov::CgOptions{}.max_iters);
  EXPECT_EQ(solver::to_fcg_options(o).max_outer,
            krylov::FcgOptions{}.max_outer);
}

TEST(OptionsTranslation, ExplicitFieldsCarryOver) {
  solver::Options o;
  o.max_iters = 77;
  o.restart = 11;
  o.tol = 1e-6;
  o.ortho = krylov::Orthogonalization::CGS2;
  o.lsq_policy = sdcgmres::dense::LsqPolicy::Fallback;
  o.inner_iters = 9;
  o.robust_first_inner = true;

  const auto g = solver::to_gmres_options(o);
  EXPECT_EQ(g.max_iters, 77u);
  EXPECT_EQ(g.restart, 11u);
  EXPECT_EQ(g.ortho, krylov::Orthogonalization::CGS2);
  EXPECT_EQ(g.lsq_policy, sdcgmres::dense::LsqPolicy::Fallback);

  const auto ft = solver::to_ft_gmres_options(o);
  EXPECT_EQ(ft.outer.max_outer, 77u);
  EXPECT_EQ(ft.inner.max_iters, 9u);
  EXPECT_TRUE(ft.robust_first_inner);
  EXPECT_EQ(ft.inner.lsq_policy, sdcgmres::dense::LsqPolicy::Fallback);
}

TEST(SolverFacade, GmresBitwiseIdenticalToFreeFunction) {
  const CsrMatrix A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());

  solver::Options o;
  o.max_iters = 200;
  o.restart = 20;

  const auto direct = krylov::gmres(op, b, la::Vector(A.cols()),
                                    solver::to_gmres_options(o));
  ASSERT_EQ(direct.status, krylov::SolveStatus::Converged);

  solver::GmresSolver facade(op, o);
  solver::SolveReport rep;
  const la::Vector x = facade.solve(b, &rep);

  EXPECT_EQ(rep.status, direct.status);
  EXPECT_EQ(rep.iterations, direct.iterations);
  EXPECT_EQ(rep.residual_norm, direct.residual_norm);
  EXPECT_EQ(rep.lsq_effective_rank, direct.lsq_effective_rank);
  expect_bitwise_equal(x, direct.x);
  expect_bitwise_equal(rep.residual_history, direct.residual_history);
}

TEST(SolverFacade, GmresRespectsInitialGuessAndPreconditioner) {
  const CsrMatrix A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  const krylov::Ilu0Preconditioner ilu(A);

  solver::Options o;
  o.max_iters = 100;
  o.precond = &ilu;

  la::Vector x0(A.rows());
  for (std::size_t i = 0; i < x0.size(); ++i) x0[i] = 0.01 * double(i % 7);

  const auto direct =
      krylov::gmres(op, b, x0, solver::to_gmres_options(o));

  solver::GmresSolver facade(op, o);
  la::Vector x = x0;
  const solver::SolveReport rep = facade.solve(b.span(), x.span());

  EXPECT_EQ(rep.iterations, direct.iterations);
  expect_bitwise_equal(x, direct.x);
}

TEST(SolverFacade, FgmresBitwiseIdenticalToFreeFunction) {
  const CsrMatrix A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  const krylov::JacobiPreconditioner jacobi(A);

  solver::Options o;
  o.max_iters = 150;
  o.precond = &jacobi;

  krylov::FixedFlexibleAdapter flex(jacobi);
  const auto direct = krylov::fgmres(op, b, la::Vector(A.cols()),
                                     solver::to_fgmres_options(o), flex);
  ASSERT_EQ(direct.status, krylov::SolveStatus::Converged);

  solver::FgmresSolver facade(op, o);
  solver::SolveReport rep;
  const la::Vector x = facade.solve(b, &rep);

  EXPECT_EQ(rep.status, direct.status);
  EXPECT_EQ(rep.iterations, direct.outer_iterations);
  EXPECT_EQ(rep.residual_norm, direct.residual_norm);
  EXPECT_EQ(rep.rank_checks, direct.rank_checks);
  EXPECT_EQ(rep.min_sigma_ratio, direct.min_sigma_ratio);
  expect_bitwise_equal(x, direct.x);
  expect_bitwise_equal(rep.residual_history, direct.residual_history);
}

TEST(SolverFacade, FtGmresBitwiseIdenticalWithAndWithoutFault) {
  const CsrMatrix A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());

  solver::Options o;
  o.inner_iters = 6;
  o.max_iters = 150;

  // Failure-free.
  const auto direct =
      krylov::ft_gmres(op, b, solver::to_ft_gmres_options(o));
  ASSERT_EQ(direct.status, krylov::SolveStatus::Converged);

  solver::FtGmresSolver facade(op, o);
  solver::SolveReport rep;
  la::Vector x = facade.solve(b, &rep);
  EXPECT_EQ(rep.status, direct.status);
  EXPECT_EQ(rep.iterations, direct.outer_iterations);
  EXPECT_EQ(rep.total_inner_iterations, direct.total_inner_iterations);
  expect_bitwise_equal(x, direct.x);
  expect_bitwise_equal(rep.residual_history, direct.residual_history);
  ASSERT_EQ(rep.inner_solves.size(), direct.inner_solves.size());

  // With one planned class-1 fault: the façade seam must reproduce the
  // free function's hook wiring exactly.
  const auto plan = sdc::InjectionPlan::hessenberg(
      direct.total_inner_iterations / 2, sdc::MgsPosition::First,
      sdc::fault_classes::very_large());
  sdc::FaultCampaign direct_campaign(plan);
  const auto faulty_direct = krylov::ft_gmres(
      op, b, solver::to_ft_gmres_options(o), &direct_campaign);

  sdc::FaultCampaign facade_campaign(plan);
  facade.set_hook(&facade_campaign);
  solver::SolveReport faulty_rep;
  la::Vector faulty_x = facade.solve(b, &faulty_rep);

  EXPECT_EQ(direct_campaign.fired(), facade_campaign.fired());
  EXPECT_TRUE(facade_campaign.fired());
  EXPECT_EQ(faulty_rep.iterations, faulty_direct.outer_iterations);
  EXPECT_EQ(faulty_rep.sanitized_outputs, faulty_direct.sanitized_outputs);
  expect_bitwise_equal(faulty_x, faulty_direct.x);
}

TEST(SolverFacade, WorkspaceReuseAcrossSolvesStaysBitwise) {
  // One façade instance solved twice must give the same doubles both
  // times (the internal workspace reuse may not leak state).
  const CsrMatrix A = gen::poisson2d(7);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());

  solver::Options o;
  o.inner_iters = 5;
  solver::FtGmresSolver facade(op, o);
  solver::SolveReport r1, r2;
  const la::Vector x1 = facade.solve(b, &r1);
  const la::Vector x2 = facade.solve(b, &r2);
  EXPECT_EQ(r1.iterations, r2.iterations);
  expect_bitwise_equal(x1, x2);
}

TEST(SolverFacade, CgBitwiseIdenticalToFreeFunction) {
  const CsrMatrix A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());

  solver::Options o;
  o.max_iters = 500;

  const auto direct =
      krylov::cg(op, b, la::Vector(A.cols()), solver::to_cg_options(o));
  ASSERT_TRUE(direct.converged);

  solver::CgSolver facade(op, o);
  solver::SolveReport rep;
  const la::Vector x = facade.solve(b, &rep);
  EXPECT_EQ(rep.status, solver::SolveStatus::Converged);
  EXPECT_EQ(rep.iterations, direct.iterations);
  EXPECT_EQ(rep.residual_norm, direct.residual_norm);
  expect_bitwise_equal(x, direct.x);
  expect_bitwise_equal(rep.residual_history, direct.residual_history);
}

TEST(SolverFacade, FcgBitwiseIdenticalToFreeFunction) {
  const CsrMatrix A = gen::random_spd(60, 7);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());
  const krylov::JacobiPreconditioner jacobi(A);

  solver::Options o;
  o.max_iters = 300;
  o.precond = &jacobi;

  krylov::FixedFlexibleAdapter flex(jacobi);
  const auto direct = krylov::fcg(op, b, la::Vector(A.cols()),
                                  solver::to_fcg_options(o), flex);
  ASSERT_EQ(direct.status, krylov::SolveStatus::Converged);

  solver::FcgSolver facade(op, o);
  solver::SolveReport rep;
  const la::Vector x = facade.solve(b, &rep);
  EXPECT_EQ(rep.status, direct.status);
  EXPECT_EQ(rep.iterations, direct.outer_iterations);
  expect_bitwise_equal(x, direct.x);
  expect_bitwise_equal(rep.residual_history, direct.residual_history);
}

TEST(SolverFacade, FtCgBitwiseIdenticalToFreeFunction) {
  const CsrMatrix A = gen::random_spd(60, 7);
  const krylov::CsrOperator op(A);
  const la::Vector b = la::ones(A.rows());

  solver::Options o;
  o.inner_iters = 5;

  const auto direct = krylov::ft_cg(op, b, solver::to_ft_cg_options(o));
  ASSERT_EQ(direct.status, krylov::SolveStatus::Converged);

  solver::FtCgSolver facade(op, o);
  solver::SolveReport rep;
  const la::Vector x = facade.solve(b, &rep);
  EXPECT_EQ(rep.status, direct.status);
  EXPECT_EQ(rep.iterations, direct.outer_iterations);
  EXPECT_EQ(rep.total_inner_iterations, direct.total_inner_iterations);
  expect_bitwise_equal(x, direct.x);
}

TEST(SolverFacade, HookSeamEnforced) {
  const CsrMatrix A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      0, sdc::MgsPosition::First, sdc::fault_classes::very_large()));

  solver::GmresSolver gmres(op);
  solver::FtGmresSolver ft(op);
  solver::FtCgSolver ftcg(op);
  EXPECT_TRUE(gmres.supports_hooks());
  EXPECT_TRUE(ft.supports_hooks());
  EXPECT_TRUE(ftcg.supports_hooks());
  EXPECT_NO_THROW(gmres.set_hook(&campaign));
  EXPECT_NO_THROW(gmres.set_hook(nullptr));

  solver::CgSolver cg(op);
  solver::FgmresSolver fgmres(op);
  solver::FcgSolver fcg(op);
  EXPECT_FALSE(cg.supports_hooks());
  EXPECT_THROW(cg.set_hook(&campaign), std::invalid_argument);
  EXPECT_THROW(fgmres.set_hook(&campaign), std::invalid_argument);
  EXPECT_THROW(fcg.set_hook(&campaign), std::invalid_argument);
  EXPECT_NO_THROW(cg.set_hook(nullptr)); // detaching is always fine
}

TEST(SolverFacade, SizeMismatchThrows) {
  const CsrMatrix A = gen::poisson2d(6);
  const krylov::CsrOperator op(A);
  solver::GmresSolver facade(op);
  la::Vector b(A.rows());
  la::Vector x(A.rows() + 1);
  EXPECT_THROW((void)facade.solve(b.span(), x.span()), std::invalid_argument);
}
