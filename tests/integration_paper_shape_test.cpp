#include <gtest/gtest.h>

#include "experiment/sweep.hpp"
#include "gen/poisson.hpp"
#include "la/blas1.hpp"

namespace experiment = sdcgmres::experiment;
namespace sdc = sdcgmres::sdc;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

/// Regression guards for the paper's *qualitative* findings on a
/// miniature version of the Fig. 3 protocol (Poisson, FT-GMRES).  If any
/// of these flip, the reproduction no longer tells the paper's story,
/// even if every unit test still passes.
namespace {

experiment::SweepResult run(sdc::MgsPosition position,
                            const sdc::FaultModel& model) {
  static const auto A = gen::poisson2d(10);
  static const la::Vector b = la::ones(A.rows());
  experiment::SweepConfig config;
  config.solver.inner.max_iters = 10;
  config.solver.outer.tol = 1e-8;
  config.solver.outer.max_outer = 200;
  config.position = position;
  config.model = model;
  return experiment::run_injection_sweep(A, b, config);
}

} // namespace

TEST(PaperShape, EveryConfigurationRunsThrough) {
  // The headline: no configuration of a single SDC event prevents
  // convergence (run-through without rollback).
  for (const auto position :
       {sdc::MgsPosition::First, sdc::MgsPosition::Last}) {
    for (const auto model : {sdc::fault_classes::very_large(),
                             sdc::fault_classes::slightly_smaller(),
                             sdc::fault_classes::nearly_zero()}) {
      const auto sweep = run(position, model);
      EXPECT_TRUE(sweep.baseline_converged);
      EXPECT_EQ(sweep.failed_runs(), 0u) << sdc::to_string(model);
    }
  }
}

TEST(PaperShape, Class1FirstStepIsTheWorstConfiguration) {
  // Fig. 3a vs everything else: large faults on the first MGS step of an
  // SPD problem disturb more runs than any other configuration.
  const auto worst = run(sdc::MgsPosition::First,
                         sdc::fault_classes::very_large());
  const auto small_first = run(sdc::MgsPosition::First,
                               sdc::fault_classes::slightly_smaller());
  const auto large_last = run(sdc::MgsPosition::Last,
                              sdc::fault_classes::very_large());
  EXPECT_LT(worst.unchanged_runs(), small_first.unchanged_runs());
  EXPECT_LT(worst.unchanged_runs(), large_last.unchanged_runs());
}

TEST(PaperShape, SmallFaultsArePracticallyHarmless) {
  // Fig. 3a middle/bottom: class 2 and 3 faults leave the vast majority
  // of runs at the failure-free iteration count.
  for (const auto model : {sdc::fault_classes::slightly_smaller(),
                           sdc::fault_classes::nearly_zero()}) {
    const auto sweep = run(sdc::MgsPosition::First, model);
    EXPECT_GE(sweep.unchanged_runs() * 10, sweep.points.size() * 8)
        << sdc::to_string(model); // >= 80% unchanged
    EXPECT_LE(sweep.max_outer_increase(), 2u);
  }
}

TEST(PaperShape, LastStepFaultsAreMilderThanFirstStepFaults) {
  // Fig. 3b vs 3a for class 1: corrupting the final MGS coefficient
  // leaves no later step of the same column to taint.
  const auto first = run(sdc::MgsPosition::First,
                         sdc::fault_classes::very_large());
  const auto last = run(sdc::MgsPosition::Last,
                        sdc::fault_classes::very_large());
  EXPECT_GE(last.unchanged_runs(), first.unchanged_runs());
  EXPECT_LE(last.max_outer_increase(), first.max_outer_increase());
}

TEST(PaperShape, DetectorMakesClass1PenaltySmall) {
  // Section VII-E-2: with the detector, the typical penalty for a
  // detected fault is about one extra outer iteration.
  static const auto A = gen::poisson2d(10);
  static const la::Vector b = la::ones(A.rows());
  experiment::SweepConfig config;
  config.solver.inner.max_iters = 10;
  config.solver.outer.tol = 1e-8;
  config.solver.outer.max_outer = 200;
  config.position = sdc::MgsPosition::First;
  config.model = sdc::fault_classes::very_large();
  config.with_detector = true;
  config.detector_bound = A.frobenius_norm();
  const auto sweep = experiment::run_injection_sweep(A, b, config);
  EXPECT_EQ(sweep.failed_runs(), 0u);
  EXPECT_LE(sweep.max_outer_increase(), 2u);
}
