#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include <unistd.h>

#include "experiment/journal.hpp"
#include "experiment/shard.hpp"
#include "experiment/sweep.hpp"
#include "gen/poisson.hpp"
#include "la/blas1.hpp"

namespace experiment = sdcgmres::experiment;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;

namespace {

std::string journal_path(const char* name) {
  return testing::TempDir() + "sdcgmres_shard_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

experiment::SweepConfig small_sweep_config(const std::string& journal) {
  experiment::SweepConfig config;
  config.solver.inner.max_iters = 5;
  config.solver.outer.tol = 1e-8;
  config.solver.outer.max_outer = 120;
  config.journal = journal;
  return config;
}

void expect_identical(const experiment::SweepResult& a,
                      const experiment::SweepResult& b) {
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.baseline_outer, b.baseline_outer);
  EXPECT_EQ(a.baseline_total_inner, b.baseline_total_inner);
  EXPECT_EQ(a.baseline_converged, b.baseline_converged);
}

} // namespace

TEST(ShardedSweep, MatchesSerialResultBitwise) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);

  experiment::SweepConfig serial_config = small_sweep_config("");
  const auto serial = experiment::run_injection_sweep(A, b, serial_config);

  const std::string path = journal_path("plain");
  experiment::ShardOptions shard;
  shard.workers = 3;
  experiment::ShardReport report;
  const auto sharded = experiment::run_sharded_sweep(
      A, b, small_sweep_config(path), shard, &report);

  expect_identical(sharded, serial);
  EXPECT_EQ(report.ranges, 3u);
  EXPECT_EQ(report.worker_crashes, 0u);
  // The merged journal holds every point.
  const auto contents = experiment::SweepJournal::load(path);
  EXPECT_TRUE(contents.has_header);
  EXPECT_EQ(contents.points.size(), serial.points.size());
  std::remove(path.c_str());
}

TEST(ShardedSweep, Kill9MidRangeStillMatchesSerialBitwise) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);

  const auto serial =
      experiment::run_injection_sweep(A, b, small_sweep_config(""));

  // Drill: range 1's first-attempt worker SIGKILLs itself after
  // journaling 3 points -- a crash the parent must observe, re-queue, and
  // heal by resuming the range journal.  The retry skips the 3 journaled
  // points, so the final result exercises the resume path too.
  const std::string path = journal_path("kill9");
  experiment::ShardOptions shard;
  shard.workers = 2;
  shard.drill.range = 1;
  shard.drill.after_points = 3;
  experiment::ShardReport report;
  const auto sharded = experiment::run_sharded_sweep(
      A, b, small_sweep_config(path), shard, &report);

  expect_identical(sharded, serial);
  EXPECT_GE(report.worker_crashes, 1u);
  EXPECT_GE(report.ranges_requeued, 1u);
  std::remove(path.c_str());
}

TEST(ShardedSweep, StalledWorkerIsKilledByTheDeadlineAndHealed) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);

  const auto serial =
      experiment::run_injection_sweep(A, b, small_sweep_config(""));

  // Drill: range 0's first attempt hangs forever after journaling one
  // point.  Only the worker_timeout deadline can unstick the sweep.
  const std::string path = journal_path("stall");
  experiment::ShardOptions shard;
  shard.workers = 2;
  shard.worker_timeout_seconds = 1.0;
  shard.drill.range = 0;
  shard.drill.after_points = 1;
  shard.drill.stall = true;
  experiment::ShardReport report;
  const auto sharded = experiment::run_sharded_sweep(
      A, b, small_sweep_config(path), shard, &report);

  expect_identical(sharded, serial);
  EXPECT_GE(report.timeouts, 1u);
  EXPECT_GE(report.ranges_requeued, 1u);
  std::remove(path.c_str());
}

TEST(ShardedSweep, RetryExhaustionFailsLoudly) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);

  // Drill every attempt: the range can never complete, so after
  // max_retries the sweep must throw instead of spinning forever.
  const std::string path = journal_path("exhaust");
  experiment::ShardOptions shard;
  shard.workers = 2;
  shard.max_retries = 1;
  shard.retry_backoff_seconds = 0.0;
  shard.drill.range = 0;
  shard.drill.after_points = 0;
  shard.drill.every_attempt = true;
  EXPECT_THROW((void)experiment::run_sharded_sweep(
                   A, b, small_sweep_config(path), shard),
               std::runtime_error);
  // Clean up whatever journals the aborted run left behind.
  std::remove(path.c_str());
  std::remove((path + ".range0").c_str());
  std::remove((path + ".range1").c_str());
}

TEST(ShardedSweep, RequiresAJournalPath) {
  const auto A = gen::poisson2d(4);
  const la::Vector b = la::ones(16);
  experiment::ShardOptions shard;
  EXPECT_THROW((void)experiment::run_sharded_sweep(
                   A, b, small_sweep_config(""), shard),
               std::invalid_argument);
}

TEST(ShardedSweep, MoreWorkersThanPointsClampsToThePointCount) {
  const auto A = gen::poisson2d(6);
  const la::Vector b = la::ones(36);

  auto config = small_sweep_config(journal_path("clamp"));
  config.site_limit = 3; // 3 points only
  const auto serial_config = [&] {
    auto c = config;
    c.journal.clear();
    return c;
  }();
  const auto serial = experiment::run_injection_sweep(A, b, serial_config);

  experiment::ShardOptions shard;
  shard.workers = 16;
  experiment::ShardReport report;
  const auto sharded =
      experiment::run_sharded_sweep(A, b, config, shard, &report);
  expect_identical(sharded, serial);
  EXPECT_EQ(report.ranges, 3u);
  std::remove(config.journal.c_str());
}
