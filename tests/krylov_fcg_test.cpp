#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <stdexcept>

#include "gen/poisson.hpp"
#include "gen/random_sparse.hpp"
#include "krylov/cg.hpp"
#include "krylov/fcg.hpp"
#include "la/blas1.hpp"
#include "sdc/injection.hpp"

namespace krylov = sdcgmres::krylov;
namespace gen = sdcgmres::gen;
namespace la = sdcgmres::la;
namespace sdc = sdcgmres::sdc;

namespace {

double explicit_residual(const sdcgmres::sparse::CsrMatrix& A,
                         const la::Vector& b, const la::Vector& x) {
  la::Vector r(A.rows());
  A.spmv(x, r);
  la::waxpby(1.0, b, -1.0, r, r);
  return la::nrm2(r);
}

class IdentityFlexible final : public krylov::FlexiblePreconditioner {
public:
  using krylov::FlexiblePreconditioner::apply;
  void apply(std::span<const double> q, std::size_t,
             std::span<double> z) override {
    la::copy(q, z);
  }
};

/// Jacobi on even applications, identity on odd ones: a genuinely
/// changing preconditioner.
class AlternatingFlexible final : public krylov::FlexiblePreconditioner {
public:
  explicit AlternatingFlexible(la::Vector inv_diag)
      : inv_diag_(std::move(inv_diag)) {}
  using krylov::FlexiblePreconditioner::apply;
  void apply(std::span<const double> q, std::size_t index,
             std::span<double> z) override {
    if (index % 2 == 0) {
      la::hadamard(q, std::span<const double>(inv_diag_.span()), z);
    } else {
      la::copy(q, z);
    }
  }

private:
  la::Vector inv_diag_;
};

} // namespace

TEST(Fcg, IdentityPreconditionerMatchesPlainCgIterationCount) {
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(100);
  const krylov::CsrOperator op(A);
  IdentityFlexible M;
  krylov::FcgOptions opts;
  opts.tol = 1e-8;
  const auto flex = krylov::fcg(op, b, la::zeros(100), opts, M);

  krylov::CgOptions copts;
  copts.tol = 1e-8;
  const auto plain = krylov::cg(A, b, copts);

  ASSERT_EQ(flex.status, krylov::SolveStatus::Converged);
  ASSERT_TRUE(plain.converged);
  // With a fixed M, FCG reduces to PCG up to rounding; identical counts
  // modulo the explicit-residual verification step.
  EXPECT_NEAR(static_cast<double>(flex.outer_iterations),
              static_cast<double>(plain.iterations), 2.0);
}

TEST(Fcg, ConvergesWithChangingPreconditioner) {
  const auto A = gen::anisotropic2d(12, 30.0, 1.0);
  const la::Vector b = la::ones(A.rows());
  const krylov::CsrOperator op(A);
  la::Vector inv_diag = A.diagonal();
  for (std::size_t i = 0; i < inv_diag.size(); ++i) {
    inv_diag[i] = 1.0 / inv_diag[i];
  }
  AlternatingFlexible M(std::move(inv_diag));
  krylov::FcgOptions opts;
  opts.tol = 1e-8;
  opts.max_outer = 3000;
  const auto res = krylov::fcg(op, b, la::zeros(A.rows()), opts, M);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-6);
}

TEST(Fcg, DetectsIndefiniteOperator) {
  const auto A = gen::poisson2d(6).scaled(-1.0);
  const krylov::CsrOperator op(A);
  IdentityFlexible M;
  const auto res =
      krylov::fcg(op, la::ones(36), la::zeros(36), krylov::FcgOptions{}, M);
  EXPECT_EQ(res.status, krylov::SolveStatus::Indefinite);
}

TEST(Fcg, SanitizesNonFinitePreconditionerOutput) {
  class PoisonOnce final : public krylov::FlexiblePreconditioner {
  public:
    using krylov::FlexiblePreconditioner::apply;
    void apply(std::span<const double> q, std::size_t index,
               std::span<double> z) override {
      la::copy(q, z);
      if (index == 2) z[0] = std::nan("");
    }
  };
  const auto A = gen::poisson2d(8);
  const krylov::CsrOperator op(A);
  PoisonOnce M;
  krylov::FcgOptions opts;
  opts.tol = 1e-8;
  const auto res = krylov::fcg(op, la::ones(64), la::zeros(64), opts, M);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_GE(res.sanitized_outputs, 1u);
}

TEST(Fcg, InvalidArgumentsThrow) {
  const auto A = gen::poisson1d(4);
  const krylov::CsrOperator op(A);
  IdentityFlexible M;
  krylov::FcgOptions opts;
  EXPECT_THROW((void)krylov::fcg(op, la::ones(5), la::zeros(4), opts, M),
               std::invalid_argument);
  opts.max_outer = 0;
  EXPECT_THROW((void)krylov::fcg(op, la::ones(4), la::zeros(4), opts, M),
               std::invalid_argument);
}

TEST(Fcg, StatusNamesAreStable) {
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::Converged), "converged");
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::MaxIterations),
               "max-iterations");
  EXPECT_STREQ(krylov::to_string(krylov::SolveStatus::Indefinite),
               "indefinite");
}

TEST(FtCg, SolvesPoissonFailureFree) {
  const auto A = gen::poisson2d(10);
  const la::Vector b = la::ones(100);
  krylov::FtCgOptions opts;
  opts.outer.tol = 1e-8;
  const auto res = krylov::ft_cg(A, b, opts);
  EXPECT_EQ(res.status, krylov::SolveStatus::Converged);
  EXPECT_LE(explicit_residual(A, b, res.x), 1e-8 * la::nrm2(b) * 1.01);
  EXPECT_GT(res.total_inner_iterations, 0u);
}

TEST(FtCg, FewerOuterIterationsThanPlainCg) {
  const auto A = gen::poisson2d(12);
  const la::Vector b = la::ones(A.rows());
  krylov::FtCgOptions opts;
  opts.outer.tol = 1e-8;
  const auto nested = krylov::ft_cg(A, b, opts);
  krylov::CgOptions copts;
  copts.tol = 1e-8;
  const auto plain = krylov::cg(A, b, copts);
  ASSERT_EQ(nested.status, krylov::SolveStatus::Converged);
  ASSERT_TRUE(plain.converged);
  EXPECT_LT(nested.outer_iterations, plain.iterations / 2);
}

TEST(FtCg, RunsThroughSingleFaults) {
  // The paper's future-work experiment: does the FT pattern transfer to a
  // flexible CG outer iteration?  Single faults of all three classes are
  // absorbed with bounded penalty.
  const auto A = gen::poisson2d(8);
  const la::Vector b = la::ones(64);
  krylov::FtCgOptions opts;
  opts.outer.tol = 1e-8;
  const auto baseline = krylov::ft_cg(A, b, opts);
  ASSERT_EQ(baseline.status, krylov::SolveStatus::Converged);

  for (const auto model : {sdc::fault_classes::very_large(),
                           sdc::fault_classes::slightly_smaller(),
                           sdc::fault_classes::nearly_zero()}) {
    sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
        5, sdc::MgsPosition::Last, model));
    const auto res = krylov::ft_cg(A, b, opts, &campaign);
    ASSERT_TRUE(campaign.fired()) << sdc::to_string(model);
    EXPECT_EQ(res.status, krylov::SolveStatus::Converged)
        << sdc::to_string(model);
    EXPECT_LE(res.outer_iterations, baseline.outer_iterations + 4)
        << sdc::to_string(model);
  }
}

TEST(FtCg, HookSeesInnerIterations) {
  class CountingHook final : public krylov::ArnoldiHook {
  public:
    std::size_t iterations = 0;
    void on_iteration_begin(const krylov::ArnoldiContext&) override {
      ++iterations;
    }
  };
  const auto A = gen::poisson2d(8);
  krylov::FtCgOptions opts;
  opts.inner.max_iters = 10;
  CountingHook hook;
  const auto res = krylov::ft_cg(A, la::ones(64), opts, &hook);
  EXPECT_EQ(hook.iterations, res.total_inner_iterations);
}
