#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "la/blas1.hpp"
#include "sparse/csr.hpp"

namespace sparse = sdcgmres::sparse;
namespace la = sdcgmres::la;

namespace {

/// 2x2 example [1 2; 0 3].
sparse::CsrMatrix small_matrix() {
  sparse::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 2.0);
  coo.add(1, 1, 3.0);
  return sparse::CsrMatrix(std::move(coo));
}

} // namespace

TEST(Csr, FromCooBasicShape) {
  const auto A = small_matrix();
  EXPECT_EQ(A.rows(), 2u);
  EXPECT_EQ(A.cols(), 2u);
  EXPECT_EQ(A.nnz(), 3u);
}

TEST(Csr, RowPointersConsistent) {
  const auto A = small_matrix();
  const auto& rp = A.row_ptr();
  ASSERT_EQ(rp.size(), 3u);
  EXPECT_EQ(rp[0], 0u);
  EXPECT_EQ(rp[1], 2u);
  EXPECT_EQ(rp[2], 3u);
}

TEST(Csr, AtReturnsStoredAndImplicitZero) {
  const auto A = small_matrix();
  EXPECT_EQ(A.at(0, 0), 1.0);
  EXPECT_EQ(A.at(0, 1), 2.0);
  EXPECT_EQ(A.at(1, 0), 0.0);
  EXPECT_EQ(A.at(1, 1), 3.0);
}

TEST(Csr, AtOutOfRangeThrows) {
  const auto A = small_matrix();
  EXPECT_THROW((void)A.at(2, 0), std::out_of_range);
}

TEST(Csr, DuplicateTripletsAreSummed) {
  sparse::CooMatrix coo(1, 1);
  coo.add(0, 0, 1.5);
  coo.add(0, 0, 2.5);
  const sparse::CsrMatrix A{std::move(coo)};
  EXPECT_EQ(A.nnz(), 1u);
  EXPECT_DOUBLE_EQ(A.at(0, 0), 4.0);
}

TEST(Csr, SpmvMatchesHandComputation) {
  const auto A = small_matrix();
  la::Vector x{1.0, 10.0};
  la::Vector y(2);
  A.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 21.0);
  EXPECT_DOUBLE_EQ(y[1], 30.0);
}

TEST(Csr, SpmvSizeMismatchThrows) {
  const auto A = small_matrix();
  la::Vector x(3);
  la::Vector y(2);
  EXPECT_THROW(A.spmv(x, y), std::invalid_argument);
}

TEST(Csr, SpmvTransposeMatchesTransposedSpmv) {
  const auto A = small_matrix();
  const auto At = A.transposed();
  la::Vector x{2.0, -1.0};
  la::Vector y1(2), y2(2);
  A.spmv_transpose(x, y1);
  At.spmv(x, y2);
  EXPECT_DOUBLE_EQ(y1[0], y2[0]);
  EXPECT_DOUBLE_EQ(y1[1], y2[1]);
}

TEST(Csr, ApplyReturnsByValue) {
  const auto A = small_matrix();
  const la::Vector y = A.apply(la::Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(Csr, DiagonalExtraction) {
  const auto A = small_matrix();
  const la::Vector d = A.diagonal();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], 1.0);
  EXPECT_EQ(d[1], 3.0);
}

TEST(Csr, TransposeRoundTrip) {
  const auto A = small_matrix();
  const auto Att = A.transposed().transposed();
  EXPECT_EQ(Att.nnz(), A.nnz());
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(Att.at(i, j), A.at(i, j));
    }
  }
}

TEST(Csr, FrobeniusNorm) {
  const auto A = small_matrix();
  EXPECT_DOUBLE_EQ(A.frobenius_norm(), std::sqrt(1.0 + 4.0 + 9.0));
}

TEST(Csr, ScaledMultipliesValues) {
  const auto A = small_matrix().scaled(2.0);
  EXPECT_EQ(A.at(0, 1), 4.0);
  EXPECT_EQ(A.at(1, 1), 6.0);
}

TEST(Csr, ToCooRoundTrip) {
  const auto A = small_matrix();
  const sparse::CsrMatrix B{A.to_coo()};
  EXPECT_EQ(B.nnz(), A.nnz());
  EXPECT_EQ(B.at(0, 1), A.at(0, 1));
}

TEST(Csr, RawConstructorValidatesRowPtr) {
  EXPECT_THROW(sparse::CsrMatrix(2, 2, {0, 1}, {0}, {1.0}),
               std::invalid_argument);
}

TEST(Csr, RawConstructorValidatesColumnOrder) {
  // Columns within a row must strictly increase.
  EXPECT_THROW(sparse::CsrMatrix(1, 3, {0, 2}, {2, 1}, {1.0, 1.0}),
               std::invalid_argument);
}

TEST(Csr, RawConstructorValidatesColumnRange) {
  EXPECT_THROW(sparse::CsrMatrix(1, 2, {0, 1}, {2}, {1.0}),
               std::invalid_argument);
}

TEST(Csr, RawConstructorAcceptsValidInput) {
  const sparse::CsrMatrix A(2, 2, {0, 1, 2}, {0, 1}, {5.0, 6.0});
  EXPECT_EQ(A.at(0, 0), 5.0);
  EXPECT_EQ(A.at(1, 1), 6.0);
}

TEST(Csr, RowSpansMatchStorage) {
  const auto A = small_matrix();
  const auto cols = A.row_cols(0);
  const auto vals = A.row_values(0);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0u);
  EXPECT_EQ(cols[1], 1u);
  EXPECT_EQ(vals[1], 2.0);
}
