/// \file bench_table1.cpp
/// \brief Reproduces Table I: sample-matrix characteristics and the
/// potential fault-detector bounds ||A||_2 and ||A||_F.
///
/// Paper values (full scale): Poisson 10,000 rows / 49,600 nnz /
/// ||A||_2 = 8 / ||A||_F = 446 / kappa = 6.0e3; mult_dcop_03 25,187 rows /
/// 193,216 nnz / ||A||_2 = 17.18 / ||A||_F = 42.42 / kappa = 7.3e13.
/// The circuit column here is the synthetic substitute (DESIGN.md §4): its
/// Frobenius norm is calibrated to the paper's and its condition number is
/// reported as a rigorous lower bound (sigma_min estimation by iteration
/// is beyond double precision at kappa ~ 1e13).

#include <iostream>

#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "sparse/norms.hpp"

using namespace sdcgmres;

int main() {
  benchcfg::print_mode_banner("bench_table1 (Table I)");

  const auto poisson = benchcfg::poisson_matrix();
  const auto circuit = benchcfg::circuit_matrix();

  auto poisson_report =
      experiment::characterize("Poisson Equation", poisson,
                               /*estimate_condition=*/true);
  auto circuit_report =
      experiment::characterize("circuit-like", circuit,
                               /*estimate_condition=*/false);
  // Rigorous lower bound on the circuit matrix's condition number:
  // sigma_min <= min_j ||A e_j||.
  circuit_report.condition_estimate =
      circuit_report.two_norm_estimate /
      sparse::min_column_norm(circuit);

  experiment::print_table1(std::cout, {poisson_report, circuit_report});

  std::cout << "\nNotes:\n"
            << "* circuit-like condition number is a lower bound "
               "(sigma_max / min column norm).\n"
            << "* paper reference values: Poisson ||A||_2 = 8, ||A||_F = "
               "446, kappa = 6.0e3;\n"
            << "  mult_dcop_03 ||A||_2 = 17.18, ||A||_F = 42.42, kappa = "
               "7.3e13.\n";
  return 0;
}
