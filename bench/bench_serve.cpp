/// \file bench_serve.cpp
/// \brief Service throughput harness: a 20-job burst over 3 matrices
/// driven through service::SweepScheduler, cold cache vs warm cache.
///
/// The burst rotates small sweep jobs across three matrices from two
/// tenants, so the scheduler exercises the fairness path while the
/// ArtifactCache sees each matrix repeatedly.  The first burst starts
/// from an empty cache (every problem/calibration is a miss); the second
/// burst reuses the same scheduler, so only the per-job solves remain.
/// Reported: wall seconds and jobs/minute per burst, and the cache
/// hit/miss counters that explain the difference.
///
/// Usage: bench_serve [--json PATH] [--jobs N]
///
/// NOTE on scale: this container pins everything to one core, so
/// jobs/minute here measures the single-worker pipeline (spool + journal
/// + solve), not scheduling parallelism.  SDCGMRES_FULL=1 runs the
/// paper-sized matrices.

#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/scheduler.hpp"

namespace service = sdcgmres::service;
namespace benchcfg = sdcgmres::benchcfg;

namespace {

struct BurstResult {
  double seconds = 0.0;
  std::size_t jobs = 0;
  service::SchedulerStats stats;

  [[nodiscard]] double jobs_per_minute() const {
    return seconds > 0.0 ? 60.0 * static_cast<double>(jobs) / seconds : 0.0;
  }
};

/// Submit \p jobs jobs rotating over \p specs and two tenants, then wait
/// for the scheduler to drain them all.
BurstResult run_burst(service::SweepScheduler& scheduler,
                      const std::vector<std::string>& specs,
                      std::size_t jobs) {
  const service::SchedulerStats before = scheduler.stats();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < jobs; ++i) {
    const std::string tenant = i % 2 == 0 ? "alice" : "bob";
    (void)scheduler.submit("tenant=" + tenant + "\n" +
                           specs[i % specs.size()] + "\n");
  }
  for (;;) {
    const service::SchedulerStats now = scheduler.stats();
    if (now.completed + now.failed >= before.completed + before.failed + jobs) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const auto t1 = std::chrono::steady_clock::now();
  BurstResult r;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  r.jobs = jobs;
  r.stats = scheduler.stats();
  return r;
}

std::string burst_json(const BurstResult& r) {
  std::ostringstream o;
  o << "{ \"seconds\": " << r.seconds
    << ", \"jobs\": " << r.jobs
    << ", \"jobs_per_minute\": " << r.jobs_per_minute()
    << ", \"cache_hits\": " << r.stats.cache.hits
    << ", \"cache_misses\": " << r.stats.cache.misses << " }";
  return o.str();
}

} // namespace

int main(int argc, char** argv) {
  const auto args = benchcfg::parse_cli(argc, argv, {"jobs", "root"});
  const bool full = benchcfg::full_scale();
  const std::size_t jobs = args.spec.get_size("jobs", 20);
  const std::size_t n = full ? 100 : 16;

  // Three matrices, so the burst re-visits each one ~jobs/3 times: the
  // warm burst should serve every problem + calibration from cache.
  const std::string sweep_tail =
      " inner=8 sweep=1 fault=class1 site_limit=8";
  const std::vector<std::string> specs = {
      "matrix=poisson n=" + std::to_string(n) + sweep_tail,
      "matrix=convdiff n=" + std::to_string(n) + sweep_tail,
      "matrix=aniso n=" + std::to_string(n) + sweep_tail,
  };

  const std::string root =
      args.spec.has("root") ? args.spec.get("root")
                            : std::string("bench_serve_spool");
  service::SchedulerOptions options;
  options.root = root;
  options.max_concurrent_jobs = args.threads == 0 ? 1 : args.threads;
  options.poll_ms = 5;
  service::SweepScheduler scheduler(options);
  scheduler.start();

  std::cout << "bench_serve: " << (full ? "FULL" : "default") << " scale, "
            << jobs << "-job bursts over " << specs.size() << " matrices, "
            << options.max_concurrent_jobs << " worker(s)\n";

  const BurstResult cold = run_burst(scheduler, specs, jobs);
  std::cout << "  cold cache: " << cold.seconds << " s, "
            << cold.jobs_per_minute() << " jobs/min ("
            << cold.stats.cache.misses << " cache misses)\n";

  const BurstResult warm = run_burst(scheduler, specs, jobs);
  const std::size_t warm_hits = warm.stats.cache.hits - cold.stats.cache.hits;
  const std::size_t warm_misses =
      warm.stats.cache.misses - cold.stats.cache.misses;
  std::cout << "  warm cache: " << warm.seconds << " s, "
            << warm.jobs_per_minute() << " jobs/min (" << warm_hits
            << " hits, " << warm_misses << " misses)\n";
  scheduler.stop();

  const service::SchedulerStats final_stats = scheduler.stats();
  const double hit_rate =
      final_stats.cache.hits + final_stats.cache.misses > 0
          ? static_cast<double>(final_stats.cache.hits) /
                static_cast<double>(final_stats.cache.hits +
                                    final_stats.cache.misses)
          : 0.0;

  if (!args.json.empty()) {
    std::ofstream out(args.json);
    out << "{\n"
        << "  \"bench\": \"bench_serve job throughput\",\n"
        << "  \"note\": \"single-core container: jobs/minute measures the "
           "1-worker pipeline (spool + journal + solve), not scheduling "
           "parallelism\",\n"
        << "  \"matrices\": [\"poisson\", \"convdiff\", \"aniso\"],\n"
        << "  \"n\": " << n << ",\n"
        << "  \"jobs_per_burst\": " << jobs << ",\n"
        << "  \"workers\": " << options.max_concurrent_jobs << ",\n"
        << "  \"cold\": " << burst_json(cold) << ",\n"
        << "  \"warm\": " << burst_json(warm) << ",\n"
        << "  \"warm_speedup\": "
        << (warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0) << ",\n"
        << "  \"cache_hit_rate\": " << hit_rate << ",\n"
        << "  \"completed\": " << final_stats.completed << ",\n"
        << "  \"failed\": " << final_stats.failed << "\n"
        << "}\n";
    std::cout << "  wrote " << args.json << "\n";
  }
  return final_stats.failed == 0 ? 0 : 1;
}
