/// \file bench_ablation_fault_rate.cpp
/// \brief Extension beyond the paper's single-event model: how does
/// FT-GMRES degrade as SDC events recur at increasing rates?
///
/// The paper deliberately studies a single transient event (Section II-A)
/// and conjectures the single-event analysis is the baseline for
/// reasoning about multiple events.  This harness quantifies that: a
/// class-1 or class-2 fault recurs every `period` aggregate inner
/// iterations, and we record outer iterations to convergence as the
/// period shrinks (rate grows), with and without the invariant detector.

#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "krylov/ft_gmres.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"

using namespace sdcgmres;

namespace {

void run_rate_sweep(const sparse::CsrMatrix& A, const la::Vector& b,
                    const sdc::FaultModel& model, const char* fault_name) {
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  opts.outer.max_outer = 400;
  const auto baseline = krylov::ft_gmres(A, b, opts);
  std::cout << "fault: " << fault_name
            << "   (failure-free outer iterations = "
            << baseline.outer_iterations << ")\n";
  std::cout << "  period | faults | outer (no detector) | outer (detector "
               "abort) | detections\n";

  for (const std::size_t period : {200u, 100u, 50u, 25u, 10u, 5u, 2u, 1u}) {
    sdc::RecurringFaultCampaign plain(/*first_iteration=*/3, period,
                                      sdc::MgsPosition::Last, model);
    const auto no_detector = krylov::ft_gmres(A, b, opts, &plain);

    sdc::RecurringFaultCampaign guarded_faults(3, period,
                                               sdc::MgsPosition::Last, model);
    sdc::HessenbergBoundDetector detector(A.frobenius_norm(),
                                          sdc::DetectorResponse::AbortSolve);
    krylov::HookChain chain({&guarded_faults, &detector});
    const auto with_detector = krylov::ft_gmres(A, b, opts, &chain);

    const auto show = [](const krylov::FtGmresResult& r) {
      std::string s = std::to_string(r.outer_iterations);
      if (r.status != krylov::FgmresStatus::Converged) {
        s += std::string(" (") + krylov::to_string(r.status) + ")";
      }
      return s;
    };
    std::cout << "  " << std::setw(6) << period << " | " << std::setw(6)
              << plain.fault_count() << " | " << std::setw(19)
              << show(no_detector) << " | " << std::setw(21)
              << show(with_detector) << " | " << detector.detections()
              << '\n';
  }
  std::cout << '\n';
}

} // namespace

int main() {
  benchcfg::print_mode_banner(
      "bench_ablation_fault_rate (recurring SDC, beyond the paper's model)");
  const auto A = benchcfg::poisson_matrix();
  const auto b = benchcfg::poisson_rhs(A);
  run_rate_sweep(A, b, sdc::fault_classes::very_large(),
                 "h x 1e+150 (class 1)");
  run_rate_sweep(A, b, sdc::fault_classes::slightly_smaller(),
                 "h x 10^-0.5 (class 2)");
  std::cout
      << "Reading: occasional events (period >= 25) cost at most ~1 outer\n"
         "iteration with or without the detector -- the single-event\n"
         "analysis extends to modest rates.  At extreme rates the two\n"
         "responses trade places: running *through* class-1 faults stays\n"
         "cheap until nearly every iteration is corrupted, while the\n"
         "abort-the-inner-solve response truncates every inner solve and\n"
         "degenerates toward unpreconditioned GMRES.  Abort is the right\n"
         "response for the rare-event regime the paper (and real hardware)\n"
         "assumes; at high rates a run-through or correct-on-detection\n"
         "policy dominates.  Either way FT-GMRES converges -- eventual\n"
         "convergence holds at every rate tested.\n";
  return 0;
}
