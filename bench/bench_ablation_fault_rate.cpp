/// \file bench_ablation_fault_rate.cpp
/// \brief Extension beyond the paper's single-event model: how does
/// FT-GMRES degrade as SDC events recur at increasing rates?
///
/// The paper deliberately studies a single transient event (Section II-A)
/// and conjectures the single-event analysis is the baseline for
/// reasoning about multiple events.  This harness quantifies that: a
/// class-1 or class-2 fault recurs every `period` aggregate inner
/// iterations, and we record outer iterations to convergence as the
/// period shrinks (rate grows), with and without the invariant detector.
///
/// Flags:
///   --threads N   run the per-period solves with N worker threads
///                 (0 = all hardware threads).  Each period owns its own
///                 campaign/detector/workspace; rows print in period
///                 order regardless of completion order.

#include <cstdint>
#include <exception>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.hpp"
#include "krylov/ft_gmres.hpp"
#include "krylov/workspace.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"

using namespace sdcgmres;

namespace {

void run_rate_sweep(const sparse::CsrMatrix& A, const la::Vector& b,
                    const sdc::FaultModel& model, const char* fault_name,
                    std::size_t threads) {
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  opts.outer.max_outer = 400;
  const auto baseline = krylov::ft_gmres(A, b, opts);
  std::cout << "fault: " << fault_name
            << "   (failure-free outer iterations = "
            << baseline.outer_iterations << ")\n";
  std::cout << "  period | faults | outer (no detector) | outer (detector "
               "abort) | detections\n";

  const std::size_t periods[] = {200u, 100u, 50u, 25u, 10u, 5u, 2u, 1u};
  constexpr std::int64_t n_rows =
      static_cast<std::int64_t>(sizeof(periods) / sizeof(periods[0]));
  std::vector<std::string> rows(static_cast<std::size_t>(n_rows));

  int workers = 1;
#ifdef _OPENMP
  workers = threads == 0 ? omp_get_max_threads() : static_cast<int>(threads);
  if (workers < 1) workers = 1;
#endif
  std::exception_ptr error;
#pragma omp parallel num_threads(workers)
  {
#ifdef _OPENMP
    omp_set_num_threads(1); // solver kernels stay serial inside a worker
#endif
    krylov::FtGmresWorkspace ws;
#pragma omp for schedule(dynamic)
    for (std::int64_t r = 0; r < n_rows; ++r) {
      try {
        const std::size_t period = periods[r];
        sdc::RecurringFaultCampaign plain(/*first_iteration=*/3, period,
                                          sdc::MgsPosition::Last, model);
        const auto no_detector = krylov::ft_gmres(A, b, opts, &plain, &ws);

        sdc::RecurringFaultCampaign guarded_faults(3, period,
                                                   sdc::MgsPosition::Last, model);
        sdc::HessenbergBoundDetector detector(
            A.frobenius_norm(), sdc::DetectorResponse::AbortSolve);
        krylov::HookChain chain({&guarded_faults, &detector});
        const auto with_detector = krylov::ft_gmres(A, b, opts, &chain, &ws);

        const auto show = [](const krylov::FtGmresResult& res) {
          std::string s = std::to_string(res.outer_iterations);
          if (res.status != krylov::SolveStatus::Converged) {
            s += std::string(" (") + krylov::to_string(res.status) + ")";
          }
          return s;
        };
        std::ostringstream row;
        row << "  " << std::setw(6) << period << " | " << std::setw(6)
            << plain.fault_count() << " | " << std::setw(19)
            << show(no_detector) << " | " << std::setw(21)
            << show(with_detector) << " | " << detector.detections() << '\n';
        rows[static_cast<std::size_t>(r)] = row.str();
      } catch (...) {
        // Exceptions may not cross the OpenMP region boundary.
#pragma omp critical(fault_rate_error)
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
  for (const std::string& row : rows) std::cout << row;
  std::cout << '\n';
}

} // namespace

int main(int argc, char** argv) {
  benchcfg::print_mode_banner(
      "bench_ablation_fault_rate (recurring SDC, beyond the paper's model)");
  const std::size_t threads = benchcfg::parse_cli(argc, argv).threads;
  const auto A = benchcfg::poisson_matrix();
  const auto b = benchcfg::poisson_rhs(A);
  run_rate_sweep(A, b, sdc::fault_classes::very_large(),
                 "h x 1e+150 (class 1)", threads);
  run_rate_sweep(A, b, sdc::fault_classes::slightly_smaller(),
                 "h x 10^-0.5 (class 2)", threads);
  std::cout
      << "Reading: occasional events (period >= 25) cost at most ~1 outer\n"
         "iteration with or without the detector -- the single-event\n"
         "analysis extends to modest rates.  At extreme rates the two\n"
         "responses trade places: running *through* class-1 faults stays\n"
         "cheap until nearly every iteration is corrupted, while the\n"
         "abort-the-inner-solve response truncates every inner solve and\n"
         "degenerates toward unpreconditioned GMRES.  Abort is the right\n"
         "response for the rare-event regime the paper (and real hardware)\n"
         "assumes; at high rates a run-through or correct-on-detection\n"
         "policy dominates.  Either way FT-GMRES converges -- eventual\n"
         "convergence holds at every rate tested.\n";
  return 0;
}
