/// \file bench_kernels.cpp
/// \brief google-benchmark timings for the computational kernels, with the
/// headline measurement the paper's "filtering values is cheap" claim
/// (Section VII-E-2): the detector's per-coefficient bound check adds
/// negligible cost to the orthogonalization kernel.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "dense/hessenberg_qr.hpp"
#include "dense/svd.hpp"
#include "gen/poisson.hpp"
#include "krylov/arnoldi.hpp"
#include "krylov/gmres.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"

using namespace sdcgmres;

namespace {

la::Vector generic_vector(std::size_t n) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + 0.3) + 0.01;
  }
  return v;
}

void BM_Spmv(benchmark::State& state) {
  const auto A = gen::poisson2d(static_cast<std::size_t>(state.range(0)));
  const la::Vector x = generic_vector(A.rows());
  la::Vector y(A.rows());
  for (auto _ : state) {
    A.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(A.nnz()));
}
BENCHMARK(BM_Spmv)->Arg(50)->Arg(100)->Arg(200);

void BM_Dot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = generic_vector(n);
  const la::Vector y = generic_vector(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::dot(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_Axpy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = generic_vector(n);
  la::Vector y = generic_vector(n);
  for (auto _ : state) {
    la::axpy(1e-6, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Axpy)->Arg(10000)->Arg(1000000);

/// Arnoldi without any hook: the baseline the detector overhead is
/// measured against.
void BM_ArnoldiNoDetector(benchmark::State& state) {
  const auto A = gen::poisson2d(64);
  const krylov::CsrOperator op(A);
  const la::Vector v0 = generic_vector(A.rows());
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = krylov::arnoldi(op, v0, m);
    benchmark::DoNotOptimize(res.steps);
  }
}
BENCHMARK(BM_ArnoldiNoDetector)->Arg(10)->Arg(25)->Arg(50);

/// The same Arnoldi run with the invariant detector attached: the paper's
/// "cheap to evaluate" claim quantified.
void BM_ArnoldiWithDetector(benchmark::State& state) {
  const auto A = gen::poisson2d(64);
  const krylov::CsrOperator op(A);
  const la::Vector v0 = generic_vector(A.rows());
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  for (auto _ : state) {
    auto res = krylov::arnoldi(op, v0, m, krylov::Orthogonalization::MGS,
                               &detector);
    benchmark::DoNotOptimize(res.steps);
  }
}
BENCHMARK(BM_ArnoldiWithDetector)->Arg(10)->Arg(25)->Arg(50);

/// Bare detector check throughput (one comparison + counter).
void BM_DetectorCheck(benchmark::State& state) {
  sdc::HessenbergBoundDetector detector(100.0);
  krylov::ArnoldiContext ctx{};
  double h = 1.5;
  for (auto _ : state) {
    detector.on_projection_coefficient(ctx, 0, 1, h);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DetectorCheck);

void BM_HessenbergQrColumn(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<double> col(m + 1, 0.5);
  for (auto _ : state) {
    state.PauseTiming();
    dense::HessenbergQr qr(m, 1.0);
    state.ResumeTiming();
    for (std::size_t j = 0; j < m; ++j) {
      benchmark::DoNotOptimize(
          qr.add_column({col.data(), j + 2}));
    }
  }
}
BENCHMARK(BM_HessenbergQrColumn)->Arg(25)->Arg(100);

void BM_JacobiSvd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  la::DenseMatrix A(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      A(i, j) = std::sin(static_cast<double>(i * n + j) * 0.7) + 0.1;
    }
  }
  for (auto _ : state) {
    auto svd = dense::jacobi_svd(A);
    benchmark::DoNotOptimize(svd.sigma.data());
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(10)->Arg(25)->Arg(50);

/// Full inner-solve cost (25 fixed GMRES iterations), with and without the
/// detector -- the end-to-end version of the overhead claim.
void BM_InnerSolve(benchmark::State& state) {
  const auto A = gen::poisson2d(64);
  const krylov::CsrOperator op(A);
  const la::Vector b = generic_vector(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 25;
  opts.tol = 0.0;
  const bool with_detector = state.range(0) != 0;
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  for (auto _ : state) {
    auto res = krylov::gmres(op, b, la::Vector(A.cols()), opts,
                             with_detector ? &detector : nullptr, 0);
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_InnerSolve)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
