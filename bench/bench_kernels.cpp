/// \file bench_kernels.cpp
/// \brief google-benchmark timings for the computational kernels, plus the
/// old-vs-new orthogonalization comparison.
///
/// Two headline measurements:
///   1. the paper's "filtering values is cheap" claim (Section VII-E-2):
///      the detector's per-coefficient bound check adds negligible cost to
///      the orthogonalization kernel;
///   2. the contiguous-basis refactor: fused block orthogonalization
///      (gemv_t + gemv over a KrylovBasis arena) vs the per-vector
///      reference path (k separate dot/axpy kernels over scattered
///      la::Vector buffers).
///
/// The second comparison also runs outside google-benchmark via
///   bench_kernels --ortho-json PATH [--ortho-n N] [--ortho-k K]
///                 [--ortho-reps R] [--ortho-only]
/// which writes machine-readable JSON (per-kind timings and speedups) so
/// the perf trajectory is recorded in-repo; the `bench_smoke` CTest target
/// drives this at a small size on every test run.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dense/hessenberg_qr.hpp"
#include "dense/svd.hpp"
#include "gen/poisson.hpp"
#include "krylov/arnoldi.hpp"
#include "krylov/gmres.hpp"
#include "krylov/orthogonalize.hpp"
#include "la/blas1.hpp"
#include "la/block.hpp"
#include "la/krylov_basis.hpp"
#include "la/tsqr.hpp"
#include "sdc/detector.hpp"

using namespace sdcgmres;

namespace {

la::Vector generic_vector(std::size_t n) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + 0.3) + 0.01;
  }
  return v;
}

// --- Old-vs-new orthogonalization -----------------------------------------

/// Identical (normalized, not mutually orthogonal -- irrelevant for
/// timing) basis contents in both representations.
struct OrthoFixture {
  std::vector<la::Vector> per_vector;
  la::KrylovBasis arena;
  la::Vector v_template;

  OrthoFixture(std::size_t n, std::size_t k) : arena(n, k) {
    for (std::size_t j = 0; j < k; ++j) {
      la::Vector q(n);
      for (std::size_t i = 0; i < n; ++i) {
        q[i] = std::sin(0.7 * static_cast<double>(i) +
                        1.1 * static_cast<double>(j)) +
               0.02;
      }
      la::scal(1.0 / la::nrm2(q), q);
      arena.append(q);
      per_vector.push_back(std::move(q));
    }
    v_template = generic_vector(n);
  }
};

void BM_OrthoPerVector(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto kind = static_cast<krylov::Orthogonalization>(state.range(2));
  const OrthoFixture fix(n, k);
  la::Vector v(n);
  std::vector<double> h(k, 0.0);
  for (auto _ : state) {
    la::copy(fix.v_template, v);
    krylov::orthogonalize(kind, fix.per_vector, k, v, h, nullptr, {});
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_OrthoPerVector)
    ->Args({65536, 30, static_cast<long>(krylov::Orthogonalization::MGS)})
    ->Args({65536, 30, static_cast<long>(krylov::Orthogonalization::CGS2)});

void BM_OrthoFused(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto kind = static_cast<krylov::Orthogonalization>(state.range(2));
  const OrthoFixture fix(n, k);
  la::Vector v(n);
  std::vector<double> h(k, 0.0);
  for (auto _ : state) {
    la::copy(fix.v_template, v);
    krylov::orthogonalize(kind, fix.arena, k, v, h, nullptr, {});
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_OrthoFused)
    ->Args({65536, 30, static_cast<long>(krylov::Orthogonalization::MGS)})
    ->Args({65536, 30, static_cast<long>(krylov::Orthogonalization::CGS2)});

void BM_Spmv(benchmark::State& state) {
  const auto A = gen::poisson2d(static_cast<std::size_t>(state.range(0)));
  const la::Vector x = generic_vector(A.rows());
  la::Vector y(A.rows());
  for (auto _ : state) {
    A.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(A.nnz()));
}
BENCHMARK(BM_Spmv)->Arg(50)->Arg(100)->Arg(200);

void BM_Dot(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = generic_vector(n);
  const la::Vector y = generic_vector(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::dot(x, y));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Dot)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_Axpy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::Vector x = generic_vector(n);
  la::Vector y = generic_vector(n);
  for (auto _ : state) {
    la::axpy(1e-6, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Axpy)->Arg(10000)->Arg(1000000);

/// Arnoldi without any hook: the baseline the detector overhead is
/// measured against.
void BM_ArnoldiNoDetector(benchmark::State& state) {
  const auto A = gen::poisson2d(64);
  const krylov::CsrOperator op(A);
  const la::Vector v0 = generic_vector(A.rows());
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = krylov::arnoldi(op, v0, m);
    benchmark::DoNotOptimize(res.steps);
  }
}
BENCHMARK(BM_ArnoldiNoDetector)->Arg(10)->Arg(25)->Arg(50);

/// The same Arnoldi run with the invariant detector attached: the paper's
/// "cheap to evaluate" claim quantified.
void BM_ArnoldiWithDetector(benchmark::State& state) {
  const auto A = gen::poisson2d(64);
  const krylov::CsrOperator op(A);
  const la::Vector v0 = generic_vector(A.rows());
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  for (auto _ : state) {
    auto res = krylov::arnoldi(op, v0, m, krylov::Orthogonalization::MGS,
                               &detector);
    benchmark::DoNotOptimize(res.steps);
  }
}
BENCHMARK(BM_ArnoldiWithDetector)->Arg(10)->Arg(25)->Arg(50);

/// Bare detector check throughput (one comparison + counter).
void BM_DetectorCheck(benchmark::State& state) {
  sdc::HessenbergBoundDetector detector(100.0);
  krylov::ArnoldiContext ctx{};
  double h = 1.5;
  for (auto _ : state) {
    detector.on_projection_coefficient(ctx, 0, 1, h);
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DetectorCheck);

void BM_HessenbergQrColumn(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  std::vector<double> col(m + 1, 0.5);
  for (auto _ : state) {
    state.PauseTiming();
    dense::HessenbergQr qr(m, 1.0);
    state.ResumeTiming();
    for (std::size_t j = 0; j < m; ++j) {
      benchmark::DoNotOptimize(
          qr.add_column({col.data(), j + 2}));
    }
  }
}
BENCHMARK(BM_HessenbergQrColumn)->Arg(25)->Arg(100);

void BM_JacobiSvd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  la::DenseMatrix A(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      A(i, j) = std::sin(static_cast<double>(i * n + j) * 0.7) + 0.1;
    }
  }
  for (auto _ : state) {
    auto svd = dense::jacobi_svd(A);
    benchmark::DoNotOptimize(svd.sigma.data());
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(10)->Arg(25)->Arg(50);

/// Full inner-solve cost (25 fixed GMRES iterations), with and without the
/// detector -- the end-to-end version of the overhead claim.
void BM_InnerSolve(benchmark::State& state) {
  const auto A = gen::poisson2d(64);
  const krylov::CsrOperator op(A);
  const la::Vector b = generic_vector(A.rows());
  krylov::GmresOptions opts;
  opts.max_iters = 25;
  opts.tol = 0.0;
  const bool with_detector = state.range(0) != 0;
  sdc::HessenbergBoundDetector detector(A.frobenius_norm());
  for (auto _ : state) {
    auto res = krylov::gmres(op, b, la::Vector(A.cols()), opts,
                             with_detector ? &detector : nullptr, 0);
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_InnerSolve)->Arg(0)->Arg(1);

// --- Standalone ortho comparison with JSON output --------------------------

struct OrthoResult {
  const char* kind;
  double per_vector_ms;
  double fused_ms;
  double speedup;
};

/// Min-of-reps timing of `inner` back-to-back orthogonalize calls.
template <typename Fn>
double time_ms(Fn&& fn, int inner, int reps) {
  using clock = std::chrono::steady_clock;
  fn(); // warm up caches / page in the arena
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    for (int it = 0; it < inner; ++it) fn();
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count() /
        static_cast<double>(inner);
    if (ms < best) best = ms;
  }
  return best;
}

/// TSQR vs sequential CGS2 orthonormalization of one n x s candidate
/// block -- the s-step commit kernel against the column-at-a-time
/// alternative.  Wall-clock is secondary on a 1-core container; the
/// headline column is the global-reduction count: CGS2 pays 3 per column
/// (two projection sweeps + the norm) where TSQR pays ONE per block.
struct BlockOrthoResult {
  std::size_t s;
  double cgs2_ms;
  double tsqr_ms;
  double speedup;
  std::size_t cgs2_syncs;
  std::size_t tsqr_syncs;
};

BlockOrthoResult run_tsqr_comparison(std::size_t n, std::size_t s, int reps) {
  // Deterministic, well-conditioned candidate block.
  la::BlockWorkspace source;
  source.reserve(n, s);
  for (std::size_t j = 0; j < s; ++j) {
    const std::span<double> c = source.view(s).col(j);
    for (std::size_t i = 0; i < n; ++i) {
      c[i] = std::sin(0.9 * static_cast<double>(i) +
                      1.3 * static_cast<double>(j)) +
             0.05;
    }
  }
  const int inner = std::max(1, static_cast<int>(20'000'000 / (n * s + 1)) + 2);

  la::KrylovBasis basis(n, s);
  la::Vector v(n);
  std::vector<double> h(s, 0.0);
  const double cgs2_ms = time_ms(
      [&] {
        basis.clear();
        for (std::size_t j = 0; j < s; ++j) {
          const std::span<const double> src = source.view(s).col(j);
          std::memcpy(v.data(), src.data(), n * sizeof(double));
          krylov::orthogonalize(krylov::Orthogonalization::CGS2, basis, j, v,
                                h, nullptr, {});
          la::scal(1.0 / la::nrm2(v), v);
          basis.append(v);
        }
      },
      inner, reps);

  la::BlockWorkspace work;
  work.reserve(n, s);
  std::vector<double> r(s * s, 0.0);
  const double tsqr_ms = time_ms(
      [&] {
        for (std::size_t j = 0; j < s; ++j) {
          std::memcpy(work.view(s).col(j).data(),
                      source.view(s).col(j).data(), n * sizeof(double));
        }
        la::tsqr(work.view(s), r.data(), s);
      },
      inner, reps);

  return {s, cgs2_ms, tsqr_ms, cgs2_ms / tsqr_ms, 3 * s, 1};
}

int run_ortho_comparison(std::size_t n, std::size_t k, int reps,
                         const std::string& json_path) {
  const OrthoFixture fix(n, k);
  la::Vector v(n);
  std::vector<double> h(k, 0.0);
  // Size the inner loop so one rep is comfortably above timer resolution.
  const int inner =
      std::max(1, static_cast<int>(20'000'000 / (n * k + 1)) + 2);

  std::vector<OrthoResult> results;
  const std::pair<const char*, krylov::Orthogonalization> kinds[] = {
      {"mgs", krylov::Orthogonalization::MGS},
      {"cgs", krylov::Orthogonalization::CGS},
      {"cgs2", krylov::Orthogonalization::CGS2},
  };
  for (const auto& [name, kind] : kinds) {
    const double old_ms = time_ms(
        [&] {
          la::copy(fix.v_template, v);
          krylov::orthogonalize(kind, fix.per_vector, k, v, h, nullptr, {});
        },
        inner, reps);
    const double new_ms = time_ms(
        [&] {
          la::copy(fix.v_template, v);
          krylov::orthogonalize(kind, fix.arena, k, v, h, nullptr, {});
        },
        inner, reps);
    results.push_back({name, old_ms, new_ms, old_ms / new_ms});
  }

  // s-step commit kernel: TSQR vs sequential CGS2 on one n x s block.
  std::vector<BlockOrthoResult> tsqr_results;
  for (const std::size_t s : {2u, 4u, 8u}) {
    tsqr_results.push_back(run_tsqr_comparison(n, s, reps));
  }

  std::ostream* out = &std::cout;
  std::ofstream file;
  if (!json_path.empty()) {
    file.open(json_path);
    if (!file) {
      std::cerr << "cannot open " << json_path << " for writing\n";
      return 1;
    }
    out = &file;
  }
  *out << "{\n"
       << "  \"benchmark\": \"orthogonalization_fused_vs_per_vector\",\n"
       << "  \"note\": \"measured on a single core: tsqr_vs_cgs2 wall-clock "
          "reflects flops only; the *_global_syncs columns carry the "
          "communication story (1 reduction per block vs 3 per column)\",\n"
       << "  \"n\": " << n << ",\n"
       << "  \"k\": " << k << ",\n"
       << "  \"inner_iterations\": " << inner << ",\n"
       << "  \"repetitions\": " << reps << ",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const OrthoResult& r = results[i];
    *out << "    {\"kind\": \"" << r.kind << "\", \"per_vector_ms\": "
         << r.per_vector_ms << ", \"fused_ms\": " << r.fused_ms
         << ", \"speedup\": " << r.speedup << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  *out << "  ],\n"
       << "  \"tsqr_vs_cgs2\": [\n";
  for (std::size_t i = 0; i < tsqr_results.size(); ++i) {
    const BlockOrthoResult& r = tsqr_results[i];
    *out << "    {\"s\": " << r.s << ", \"cgs2_ms\": " << r.cgs2_ms
         << ", \"tsqr_ms\": " << r.tsqr_ms << ", \"speedup\": " << r.speedup
         << ", \"cgs2_global_syncs\": " << r.cgs2_syncs
         << ", \"tsqr_global_syncs\": " << r.tsqr_syncs << "}"
         << (i + 1 < tsqr_results.size() ? "," : "") << "\n";
  }
  *out << "  ]\n}\n";

  for (const OrthoResult& r : results) {
    std::cerr << "ortho " << r.kind << ": per-vector " << r.per_vector_ms
              << " ms, fused " << r.fused_ms << " ms, speedup " << r.speedup
              << "x\n";
  }
  for (const BlockOrthoResult& r : tsqr_results) {
    std::cerr << "block ortho s=" << r.s << ": cgs2 " << r.cgs2_ms
              << " ms (" << r.cgs2_syncs << " syncs), tsqr " << r.tsqr_ms
              << " ms (" << r.tsqr_syncs << " sync)\n";
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  // Shared spec-based flag handling (bench_common.hpp); unrecognized
  // tokens (--benchmark_*) pass through to google-benchmark.
  benchcfg::CliArgs cli = benchcfg::parse_cli(
      argc, argv, {"ortho-json", "ortho-n", "ortho-k", "ortho-reps"},
      {"ortho-only"});
  const bool ortho_requested =
      cli.spec.has("ortho-json") || cli.spec.has("ortho-n") ||
      cli.spec.has("ortho-k") || cli.spec.has("ortho-reps") ||
      cli.spec.has("ortho-only");

  if (ortho_requested) {
    std::size_t ortho_n = 0;
    std::size_t ortho_k = 0;
    std::size_t ortho_reps = 0;
    try {
      ortho_n = cli.spec.get_size("ortho-n", 65536);
      ortho_k = cli.spec.get_size("ortho-k", 30);
      ortho_reps = cli.spec.get_size("ortho-reps", 9);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    if (ortho_n == 0 || ortho_k == 0 || ortho_reps == 0) {
      std::cerr << "--ortho-n/--ortho-k/--ortho-reps must be positive\n";
      return 1;
    }
    const int rc =
        run_ortho_comparison(ortho_n, ortho_k, static_cast<int>(ortho_reps),
                             cli.spec.get("ortho-json"));
    if (rc != 0 || cli.spec.get_bool("ortho-only", false)) return rc;
  }

  int bench_argc = static_cast<int>(cli.passthrough.size());
  benchmark::Initialize(&bench_argc, cli.passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             cli.passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
