/// \file bench_detector_bounds.cpp
/// \brief Table I lists two "potential fault detectors": the (estimated)
/// two-norm sigma_max(A) and the Frobenius norm.  This harness maps each
/// bound's detection frontier: the smallest multiplicative fault magnitude
/// it can catch, per matrix.
///
/// The tighter sigma_max bound detects strictly more faults (everything
/// between sigma_max and ||A||_F), at the cost of a norm *estimate* rather
/// than an exact one-pass computation.  Both have zero false positives by
/// Eq. (3).

#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "krylov/arnoldi.hpp"
#include "la/blas1.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"
#include "sparse/norms.hpp"

using namespace sdcgmres;

namespace {

la::Vector generic_vector(std::size_t n) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + 0.3) + 0.01;
  }
  return v;
}

/// Does a fault of the given magnitude (applied to the last MGS
/// coefficient of iteration 1) trigger a detector with this bound?
bool detected_at(const sparse::CsrMatrix& A, double magnitude, double bound) {
  const krylov::CsrOperator op(A);
  sdc::FaultCampaign campaign(sdc::InjectionPlan::hessenberg(
      1, sdc::MgsPosition::Last, sdc::FaultModel::scale(magnitude)));
  sdc::HessenbergBoundDetector detector(bound);
  krylov::HookChain chain({&campaign, &detector});
  (void)krylov::arnoldi(op, generic_vector(A.rows()), 4,
                        krylov::Orthogonalization::MGS, &chain);
  return detector.triggered();
}

/// Bisect the smallest detectable multiplicative magnitude in [1, 1e160].
double detection_frontier(const sparse::CsrMatrix& A, double bound) {
  double lo = 1.0, hi = 1e160;
  if (detected_at(A, lo, bound)) return lo;
  if (!detected_at(A, hi, bound)) return std::nan("");
  for (int it = 0; it < 60; ++it) {
    const double mid = std::sqrt(lo * hi); // geometric bisection
    if (detected_at(A, mid, bound)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

void report(const char* name, const sparse::CsrMatrix& A) {
  const double fro = A.frobenius_norm();
  // Batched calibration: four power-iteration replicas whose forward
  // products run as one blocked SpMM per iteration (1 + block matrix
  // streams per iteration vs 2 * block for scalar runs), taking the best
  // replica -- robust against a start vector deficient in the top
  // direction.
  const double two = sparse::estimate_two_norm_batch(A, 4).value;
  std::cout << name << ": ||A||_2 ~= " << two << ", ||A||_F = " << fro
            << " (ratio " << fro / two << ")\n";
  std::cout << std::scientific << std::setprecision(3);
  const double oneinf = sparse::sqrt_one_inf_bound(A);
  const double frontier_fro = detection_frontier(A, fro);
  const double frontier_oneinf = detection_frontier(A, oneinf);
  const double frontier_two = detection_frontier(A, two * 1.0001);
  std::cout << "  smallest detectable fault with bound ||A||_F:              "
            << frontier_fro << "x\n";
  std::cout << "  smallest detectable fault with sqrt(||A||_1 ||A||_inf):    "
            << frontier_oneinf << "x  (one-pass, rigorous)\n";
  std::cout << "  smallest detectable fault with estimated ||A||_2:          "
            << frontier_two << "x\n";
  std::cout << std::defaultfloat << "  frontier improvement from the tighter "
            << "bound: " << frontier_fro / frontier_two << "x\n\n";
}

} // namespace

int main() {
  benchcfg::print_mode_banner(
      "bench_detector_bounds (Table I's two detector bounds compared)");
  report("Poisson", benchcfg::poisson_matrix());
  report("circuit-like", benchcfg::circuit_matrix());
  std::cout
      << "Reading: the sigma_max bound catches multiplicative faults\n"
         "||A||_F / ||A||_2 times smaller than the Frobenius bound (the\n"
         "improvement factor above), with zero false positives for either\n"
         "bound by Eq. (3).  The gap matters most for large matrices,\n"
         "where ||A||_F grows like sqrt(n) relative to sigma_max.\n";
  return 0;
}
