/// \file bench_ablation_lsq.cpp
/// \brief Ablation for Section VI-D: the three policies for solving the
/// projected system R y = z inside the (faulty) inner GMRES.
///
///   1. standard       -- plain triangular solve (Saad & Schultz)
///   2. fallback       -- triangular solve, SVD retry only on Inf/NaN
///   3. rank-revealing -- always truncated-SVD minimum-norm solve
///
/// The policies differ when a fault drives the projected problem (nearly)
/// singular: policy 1 emits Inf/NaN (loud, then filtered by the reliable
/// outer phase); policy 2 conceals huge-but-finite coefficients; policy 3
/// bounds the update coefficients.  The paper recommends 1 or 3.
///
/// Harness: the Fig. 3/4 class-1 and NaN-fault sweeps, repeated per inner
/// policy; reported are outer-iteration penalties plus how often the outer
/// reliable phase had to discard an inner result.

#include <iostream>
#include <limits>

#include "bench_common.hpp"
#include "dense/lsq_policies.hpp"
#include "experiment/report.hpp"
#include "experiment/sweep.hpp"

using namespace sdcgmres;

namespace {

void run_policy_sweep(const char* fault_name, const sparse::CsrMatrix& A,
                      const la::Vector& b, const sdc::FaultModel& model,
                      std::size_t stride) {
  std::cout << "fault: " << fault_name << "\n";
  for (const auto policy :
       {dense::LsqPolicy::Standard, dense::LsqPolicy::Fallback,
        dense::LsqPolicy::RankRevealing}) {
    experiment::SweepConfig config;
    config.solver.inner.max_iters = 25;
    config.solver.inner.lsq_policy = policy;
    config.solver.outer.tol = 1e-8;
    config.solver.outer.max_outer = 500;
    config.position = sdc::MgsPosition::First;
    config.model = model;
    config.stride = stride;
    const auto sweep = experiment::run_injection_sweep(A, b, config);
    std::size_t sanitized = 0;
    for (const auto& p : sweep.points) sanitized += p.sanitized_outputs;
    std::cout << "  inner policy " << dense::to_string(policy) << ": ";
    experiment::print_sweep_summary(std::cout, "", sweep);
    std::cout << "    inner results filtered by the reliable phase: "
              << sanitized << "\n";
  }
  std::cout << '\n';
}

} // namespace

int main() {
  benchcfg::print_mode_banner(
      "bench_ablation_lsq (projected least-squares policies 1/2/3)");
  const auto A = benchcfg::poisson_matrix();
  const auto b = benchcfg::poisson_rhs(A);
  const std::size_t stride = benchcfg::sweep_stride(4);

  run_policy_sweep("h x 1e+150 (class 1)", A, b,
                   sdc::fault_classes::very_large(), stride);
  run_policy_sweep("h x 1e-300 (class 3)", A, b,
                   sdc::fault_classes::nearly_zero(), stride);
  run_policy_sweep("h := NaN (worst-case SDC)", A, b,
                   sdc::FaultModel::set_value(
                       std::numeric_limits<double>::quiet_NaN()),
                   stride);

  std::cout
      << "Reading: every policy runs through every fault (failed = 0);\n"
         "'filtered' counts inner results the reliable outer phase had to\n"
         "discard.  Under class-1 faults the rank-revealing policy\n"
         "truncates everything below the 1e150 outlier, so its inner\n"
         "update degenerates and is discarded by the host -- with the\n"
         "detector attached (the paper's actual recommendation) the fault\n"
         "is caught before the projected solve ever sees it.  Policy 2\n"
         "behaves like policy 1 except it hides huge-but-finite\n"
         "coefficients (paper: avoid it).\n";
  return 0;
}
