/// \file bench_fig2_structure.cpp
/// \brief Reproduces Fig. 2: the Arnoldi Hessenberg matrix is tridiagonal
/// for SPD input and fully upper Hessenberg for nonsymmetric input.
///
/// Runs the Arnoldi process on both paper matrices and prints the nonzero
/// structure of H (entries above a drop tolerance), plus the largest
/// "should be zero" entry for the SPD case -- the entries whose corruption
/// drives the big Fig. 3a penalties.

#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "krylov/arnoldi.hpp"
#include "la/blas1.hpp"

using namespace sdcgmres;

namespace {

la::Vector generic_vector(std::size_t n) {
  la::Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(1.7 * static_cast<double>(i) + 0.3) + 0.01;
  }
  return v;
}

void print_structure(const char* name, const sparse::CsrMatrix& A,
                     std::size_t m) {
  const krylov::CsrOperator op(A);
  const auto res = krylov::arnoldi(op, generic_vector(A.rows()), m);
  const double drop = 1e-8 * A.frobenius_norm();
  std::cout << name << " (n = " << A.rows() << "), H(" << m + 1 << "x" << m
            << ") structure with drop tolerance " << drop << ":\n";
  double largest_above_tridiagonal = 0.0;
  for (std::size_t i = 0; i <= res.steps; ++i) {
    std::cout << "  ";
    for (std::size_t j = 0; j < res.steps; ++j) {
      const double v = (i <= j + 1) ? res.h(i, j) : 0.0;
      std::cout << (std::abs(v) > drop ? 'x' : '0') << ' ';
      if (i + 1 < j) {
        largest_above_tridiagonal =
            std::max(largest_above_tridiagonal, std::abs(v));
      }
    }
    std::cout << '\n';
  }
  std::cout << "  largest |h(i,j)| with i < j-1 (zero iff tridiagonal): "
            << std::scientific << std::setprecision(3)
            << largest_above_tridiagonal << std::defaultfloat << "\n\n";
}

} // namespace

int main() {
  benchcfg::print_mode_banner("bench_fig2_structure (Fig. 2)");
  const std::size_t m = 10;
  print_structure("Poisson (SPD)", benchcfg::poisson_matrix(), m);
  print_structure("circuit-like (nonsymmetric)", benchcfg::circuit_matrix(),
                  m);
  std::cout << "Expected: tridiagonal pattern for the SPD matrix, full\n"
               "upper-Hessenberg pattern for the nonsymmetric one.\n";
  return 0;
}
