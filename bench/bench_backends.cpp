/// \file bench_backends.cpp
/// \brief SpMV/SpMM throughput of the pluggable execution backends
/// (sparse/sell.hpp vs the CSR baseline), the measurement behind the
/// `backend=` autotuner's assumptions.
///
/// For each matrix and each format the harness times repeated y = A*x
/// (spmv) and 4-column Y = A*X (spmm) applications and reports effective
/// bandwidth in GB/s -- bytes counted at the format's TRUE stored widths,
/// i.e. SELL padding slots are paid for, exactly as OperatorStats
/// accounts them -- plus the wall-clock speedup over CSR.  `--json PATH`
/// dumps the table machine-readably (BENCH_backends.json in the repo
/// was produced this way; see the file's `caveat` field).
///
/// SDCGMRES_FULL=1 runs the paper-scale matrices; the default sizes keep
/// the whole sweep under a minute.

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gen/convection_diffusion.hpp"
#include "la/block.hpp"
#include "la/krylov_basis.hpp"
#include "solver/registry.hpp"
#include "sparse/sell.hpp"

using namespace sdcgmres;

namespace {

constexpr std::size_t kSpmmCols = 4;

struct Measurement {
  std::string format;   // "csr", "sell:8:1", ...
  double spmv_ms = 0.0; // per apply
  double spmm_ms = 0.0; // per 4-column apply
  double spmv_gbs = 0.0;
  double spmm_gbs = 0.0;
  double spmv_speedup = 1.0; // vs csr wall-clock
  double spmm_speedup = 1.0;
  double padding = 1.0; // stored()/nnz() overhead factor
};

/// Bytes one y = A*X application moves at the format's stored widths
/// (values + indices + the dense operands), the OperatorStats convention.
std::size_t csr_apply_bytes(const sparse::CsrMatrix& A, std::size_t columns) {
  return sizeof(double) * (A.nnz() + columns * (A.rows() + A.cols())) +
         sizeof(std::size_t) * (A.nnz() + A.rows() + 1);
}

std::size_t sell_apply_bytes(const sparse::SellMatrix& S,
                             std::size_t columns) {
  return sizeof(double) * (S.stored() + columns * (S.rows() + S.cols())) +
         sizeof(std::size_t) * S.index_slots();
}

/// Median-of-3 timing of \p body() run \p repeats times (milliseconds
/// per single invocation).
template <typename F>
double time_ms(F&& body, int repeats) {
  double best = 0.0;
  for (int round = 0; round < 3; ++round) {
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < repeats; ++r) body();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        repeats;
    best = round == 0 ? ms : std::min(best, ms);
  }
  return best;
}

Measurement measure(const std::string& format, const sparse::CsrMatrix& A,
                    int repeats) {
  Measurement m;
  m.format = format;
  la::Vector x(A.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
  }
  la::Vector y(A.rows());
  std::vector<double> xbuf(A.cols() * kSpmmCols);
  for (std::size_t c = 0; c < kSpmmCols; ++c) {
    for (std::size_t i = 0; i < A.cols(); ++i) {
      xbuf[c * A.cols() + i] = x[i] + static_cast<double>(c);
    }
  }
  const la::BasisView X(xbuf.data(), A.cols(), kSpmmCols, A.cols());
  std::vector<double> ybuf(A.rows() * kSpmmCols);
  la::BlockView Y(ybuf.data(), A.rows(), kSpmmCols, A.rows());

  std::size_t spmv_bytes = 0;
  std::size_t spmm_bytes = 0;
  if (format == "csr") {
    spmv_bytes = csr_apply_bytes(A, 1);
    spmm_bytes = csr_apply_bytes(A, kSpmmCols);
    m.spmv_ms = time_ms([&] { A.spmv(x, y); }, repeats);
    m.spmm_ms = time_ms(
        [&] {
          A.spmm(kSpmmCols, xbuf.data(), A.cols(), ybuf.data(), A.rows());
        },
        repeats);
  } else {
    const auto backend = solver::backend_registry().make(format, A);
    const auto* sell = dynamic_cast<const krylov::SellBackend*>(backend.get());
    if (sell == nullptr) {
      std::cerr << "format " << format << " is not SELL-backed\n";
      std::exit(1);
    }
    const sparse::SellMatrix& S = sell->matrix();
    m.padding = S.padding_ratio();
    spmv_bytes = sell_apply_bytes(S, 1);
    spmm_bytes = sell_apply_bytes(S, kSpmmCols);
    m.spmv_ms = time_ms([&] { S.spmv(x.span(), y.span()); }, repeats);
    m.spmm_ms = time_ms([&] { S.spmm(X, Y); }, repeats);
  }
  const double giga = 1024.0 * 1024.0 * 1024.0;
  m.spmv_gbs = static_cast<double>(spmv_bytes) / (m.spmv_ms * 1e-3) / giga;
  m.spmm_gbs = static_cast<double>(spmm_bytes) / (m.spmm_ms * 1e-3) / giga;
  return m;
}

void run_matrix(const char* name, const sparse::CsrMatrix& A, int repeats,
                std::ostringstream& json, bool* first_matrix) {
  const std::vector<std::string> formats = {"csr", "sell:4:1", "sell:8:1",
                                            "sell:8:4", "sell:32:1"};
  std::cout << "\n" << name << ": " << A.rows() << " rows, " << A.nnz()
            << " nnz\n";
  std::cout << "  format      spmv ms   spmv GB/s  speedup   spmm ms   "
               "spmm GB/s  speedup  padding\n";
  std::vector<Measurement> rows;
  for (const auto& format : formats) {
    rows.push_back(measure(format, A, repeats));
  }
  const Measurement& csr = rows.front();
  for (Measurement& m : rows) {
    m.spmv_speedup = csr.spmv_ms / m.spmv_ms;
    m.spmm_speedup = csr.spmm_ms / m.spmm_ms;
    std::cout << "  " << std::left << std::setw(10) << m.format << std::right
              << std::fixed << std::setprecision(4) << std::setw(9)
              << m.spmv_ms << std::setprecision(2) << std::setw(11)
              << m.spmv_gbs << std::setw(9) << m.spmv_speedup
              << std::setprecision(4) << std::setw(10) << m.spmm_ms
              << std::setprecision(2) << std::setw(11) << m.spmm_gbs
              << std::setw(9) << m.spmm_speedup << std::setw(9)
              << std::setprecision(3) << m.padding << "\n";
  }

  if (!*first_matrix) json << ",\n";
  *first_matrix = false;
  json << "    {\n      \"matrix\": \"" << name << "\",\n      \"rows\": "
       << A.rows() << ",\n      \"nnz\": " << A.nnz()
       << ",\n      \"formats\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    json << "        {\"format\": \"" << m.format << "\", \"spmv_ms\": "
         << std::setprecision(6) << m.spmv_ms << ", \"spmv_gbs\": "
         << m.spmv_gbs << ", \"spmv_speedup_vs_csr\": " << m.spmv_speedup
         << ", \"spmm_ms\": " << m.spmm_ms << ", \"spmm_gbs\": "
         << m.spmm_gbs << ", \"spmm_speedup_vs_csr\": " << m.spmm_speedup
         << ", \"padding_ratio\": " << m.padding << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "      ]\n    }";
}

} // namespace

int main(int argc, char** argv) {
  const auto cli = benchcfg::parse_cli(argc, argv, {"repeats"});
  const bool full = benchcfg::full_scale();
  const int repeats = static_cast<int>(
      cli.spec.get_size("repeats", full ? 50 : 200));
  std::cout << "bench_backends: SpMV/SpMM throughput per execution backend ("
            << (full ? "full" : "default") << " scale, " << repeats
            << " repeats; serial kernels below the OpenMP row threshold "
               "run 1-core)\n";

  std::ostringstream json;
  json << std::fixed;
  bool first = true;
  run_matrix("poisson2d", benchcfg::poisson_matrix(), repeats, json, &first);
  run_matrix("convdiff2d",
             gen::convection_diffusion2d(full ? 100 : 40, 1.5, -0.75),
             repeats, json, &first);
  run_matrix("circuit", benchcfg::circuit_matrix(), repeats, json, &first);

  if (!cli.json.empty()) {
    std::ofstream out(cli.json);
    if (!out) {
      std::cerr << "cannot open " << cli.json << " for writing\n";
      return 1;
    }
    out << "{\n  \"bench\": \"backends\",\n  \"caveat\": \"single-core "
           "container measurement; the matrices sit below the SpMV kernels' "
           "OpenMP row threshold or run with OMP_NUM_THREADS=1, so figures "
           "reflect serial memory-bandwidth, not parallel scaling\",\n"
           "  \"spmm_cols\": "
        << kSpmmCols << ",\n  \"full_scale\": " << (full ? "true" : "false")
        << ",\n  \"matrices\": [\n"
        << json.str() << "\n  ]\n}\n";
    std::cout << "\nwrote " << cli.json << "\n";
  }
  return 0;
}
