/// \file bench_ft_outer_comparison.cpp
/// \brief The paper's future-work experiment (Section VI-A): other
/// flexible outer iterations.  Compares FT-GMRES against FT-CG (flexible
/// CG outer, Golub & Ye / Notay) on the SPD Poisson problem under
/// single-event fault sweeps.
///
/// Quantities compared per fault class: failure-free outer iterations,
/// worst-case penalty over all injection sites, and failure count.
/// FGMRES's minimum-residual projection makes it the more forgiving
/// outer iteration; FCG's short recurrences are cheaper per outer
/// iteration (no growing basis) but lean harder on the reliable-phase
/// sanitization when an inner solve is corrupted.

#include <iostream>

#include "bench_common.hpp"
#include "krylov/fcg.hpp"
#include "krylov/ft_gmres.hpp"
#include "sdc/injection.hpp"

using namespace sdcgmres;

namespace {

struct SweepStats {
  std::size_t baseline = 0;
  std::size_t max_increase = 0;
  std::size_t failed = 0;
  std::size_t runs = 0;
};

SweepStats sweep_ft_gmres(const sparse::CsrMatrix& A, const la::Vector& b,
                          const sdc::FaultModel& model, std::size_t stride) {
  krylov::FtGmresOptions opts;
  opts.outer.tol = 1e-8;
  SweepStats stats;
  const auto baseline = krylov::ft_gmres(A, b, opts);
  stats.baseline = baseline.outer_iterations;
  for (std::size_t site = 0; site < baseline.total_inner_iterations;
       site += stride) {
    sdc::FaultCampaign campaign(
        sdc::InjectionPlan::hessenberg(site, sdc::MgsPosition::First, model));
    const auto res = krylov::ft_gmres(A, b, opts, &campaign);
    ++stats.runs;
    if (res.status != krylov::SolveStatus::Converged) ++stats.failed;
    if (res.outer_iterations > stats.baseline) {
      stats.max_increase = std::max(stats.max_increase,
                                    res.outer_iterations - stats.baseline);
    }
  }
  return stats;
}

SweepStats sweep_ft_cg(const sparse::CsrMatrix& A, const la::Vector& b,
                       const sdc::FaultModel& model, std::size_t stride) {
  krylov::FtCgOptions opts;
  opts.outer.tol = 1e-8;
  SweepStats stats;
  const auto baseline = krylov::ft_cg(A, b, opts);
  stats.baseline = baseline.outer_iterations;
  for (std::size_t site = 0; site < baseline.total_inner_iterations;
       site += stride) {
    sdc::FaultCampaign campaign(
        sdc::InjectionPlan::hessenberg(site, sdc::MgsPosition::First, model));
    const auto res = krylov::ft_cg(A, b, opts, &campaign);
    ++stats.runs;
    if (res.status != krylov::SolveStatus::Converged) ++stats.failed;
    if (res.outer_iterations > stats.baseline) {
      stats.max_increase = std::max(stats.max_increase,
                                    res.outer_iterations - stats.baseline);
    }
  }
  return stats;
}

void print(const char* solver, const char* fault, const SweepStats& s) {
  std::cout << "  " << solver << " / " << fault << ": baseline=" << s.baseline
            << " max_increase=" << s.max_increase << " failed=" << s.failed
            << "/" << s.runs << "\n";
}

} // namespace

int main() {
  benchcfg::print_mode_banner(
      "bench_ft_outer_comparison (FT-GMRES vs FT-CG, Section VI-A future "
      "work)");
  const auto A = benchcfg::poisson_matrix();
  const auto b = benchcfg::poisson_rhs(A);
  const std::size_t stride = benchcfg::sweep_stride(4);

  const struct {
    const char* name;
    sdc::FaultModel model;
  } classes[] = {
      {"class 1 (x1e+150)", sdc::fault_classes::very_large()},
      {"class 2 (x10^-0.5)", sdc::fault_classes::slightly_smaller()},
      {"class 3 (x1e-300)", sdc::fault_classes::nearly_zero()},
  };
  for (const auto& cls : classes) {
    print("FT-GMRES", cls.name, sweep_ft_gmres(A, b, cls.model, stride));
    print("FT-CG   ", cls.name, sweep_ft_cg(A, b, cls.model, stride));
    std::cout << '\n';
  }
  std::cout << "Reading: both flexible outer iterations run through single\n"
               "SDC events on the SPD problem; FGMRES needs fewer outer\n"
               "iterations per solve (minimum-residual projection over the\n"
               "whole basis) while FCG's short recurrence makes each outer\n"
               "iteration O(n) cheaper -- the paper's layered approach is\n"
               "not specific to the GMRES outer solver.\n";
  return 0;
}
