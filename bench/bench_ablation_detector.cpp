/// \file bench_ablation_detector.cpp
/// \brief Ablation for Section V/VII-E-2: how much does the invariant
/// detector (|h| <= ||A||_F, abort-the-inner-solve response) help?
///
/// Runs the class-1 sweep of Figs. 3/4 with the detector off and on and
/// compares worst-case outer-iteration penalties.  Paper finding: with the
/// detector the top (class 1) plots "would not be possible" -- the
/// worst-case increase drops to ~1-2 outer iterations, and every fired
/// class-1 fault whose value escapes the bound is caught.

#include <iostream>

#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "experiment/sweep.hpp"

using namespace sdcgmres;

namespace {

void ablate(const char* name, const sparse::CsrMatrix& A, const la::Vector& b,
            sdc::MgsPosition position, std::size_t stride) {
  experiment::SweepConfig config;
  config.solver.inner.max_iters = 25;
  config.solver.outer.tol = 1e-8;
  config.solver.outer.max_outer = 500;
  config.position = position;
  config.model = sdc::fault_classes::very_large();
  config.stride = stride;

  const auto off = experiment::run_injection_sweep(A, b, config);

  config.with_detector = true;
  config.detector_bound = A.frobenius_norm();
  config.detector_response = sdc::DetectorResponse::AbortSolve;
  const auto on = experiment::run_injection_sweep(A, b, config);

  std::cout << name << " ("
            << (position == sdc::MgsPosition::First ? "first" : "last")
            << " MGS step, " << off.points.size() << " sites):\n";
  experiment::print_sweep_summary(std::cout, "  detector OFF", off);
  experiment::print_sweep_summary(std::cout, "  detector ON ", on);
  std::cout << "  worst-case penalty: " << off.max_outer_increase() << " -> "
            << on.max_outer_increase() << " outer iterations\n\n";
}

} // namespace

int main() {
  benchcfg::print_mode_banner(
      "bench_ablation_detector (detector on/off, class-1 faults)");
  const auto poisson = benchcfg::poisson_matrix();
  const auto pb = benchcfg::poisson_rhs(poisson);
  const auto circuit = benchcfg::circuit_matrix();
  const auto cb = benchcfg::circuit_rhs(circuit);

  ablate("Poisson", poisson, pb, sdc::MgsPosition::First,
         benchcfg::sweep_stride(2));
  ablate("Poisson", poisson, pb, sdc::MgsPosition::Last,
         benchcfg::sweep_stride(2));
  ablate("circuit-like", circuit, cb, sdc::MgsPosition::First,
         benchcfg::sweep_stride(8));
  ablate("circuit-like", circuit, cb, sdc::MgsPosition::Last,
         benchcfg::sweep_stride(8));
  return 0;
}
