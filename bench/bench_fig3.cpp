/// \file bench_fig3.cpp
/// \brief Reproduces Fig. 3: outer iterations to convergence for the
/// Poisson (SPD) problem, given a single SDC event injected at every
/// possible aggregate inner iteration, on the first (3a) and last (3b)
/// iteration of the Modified Gram-Schmidt loop, for all three fault
/// classes.
///
/// Paper shape (full scale, failure-free = 9 outer x 25 inner):
///  * 3a, class 1 (x1e+150): large spikes -- entries of the tridiagonal H
///    that should be zero become huge; up to ~2x outer iterations.
///  * 3a, classes 2/3: at most ~2 extra outer iterations, most runs
///    unchanged.
///  * 3b (last MGS step): worst case ~1 extra outer iteration.
/// The detector (|h| <= ||A||_F) would catch every class-1 event, making
/// the top plot impossible (see bench_ablation_detector).

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "experiment/sweep.hpp"

using namespace sdcgmres;

int main() {
  benchcfg::print_mode_banner("bench_fig3 (Poisson, Figs. 3a/3b)");
  const auto A = benchcfg::poisson_matrix();
  const auto b = benchcfg::poisson_rhs(A);
  const std::size_t inner = 25;

  const struct {
    const char* name;
    sdc::FaultModel model;
  } classes[] = {
      {"h x 1e+150 (class 1)", sdc::fault_classes::very_large()},
      {"h x 10^-0.5 (class 2)", sdc::fault_classes::slightly_smaller()},
      {"h x 1e-300 (class 3)", sdc::fault_classes::nearly_zero()},
  };
  const struct {
    const char* name;
    sdc::MgsPosition position;
  } positions[] = {
      {"Fig. 3a: SDC on the FIRST iteration of the MGS loop",
       sdc::MgsPosition::First},
      {"Fig. 3b: SDC on the LAST iteration of the MGS loop",
       sdc::MgsPosition::Last},
  };

  for (const auto& pos : positions) {
    std::cout << "--------------------------------------------------------\n"
              << pos.name << "\n"
              << "--------------------------------------------------------\n";
    for (const auto& cls : classes) {
      experiment::SweepConfig config;
      config.solver.inner.max_iters = inner;
      config.solver.outer.tol = 1e-8;
      config.solver.outer.max_outer = 300;
      config.position = pos.position;
      config.model = cls.model;
      config.stride = benchcfg::sweep_stride(1);
      const auto sweep = experiment::run_injection_sweep(A, b, config);
      experiment::print_sweep_series(std::cout, cls.name, sweep, inner);
      experiment::print_sweep_summary(std::cout, cls.name, sweep);
      if (const std::string dir = benchcfg::csv_dir(); !dir.empty()) {
        std::ostringstream path;
        path << dir << "/fig3_"
             << (pos.position == sdc::MgsPosition::First ? "first" : "last")
             << "_" << (&cls - &classes[0] + 1) << ".csv";
        std::ofstream out(path.str());
        if (out) experiment::write_sweep_csv(out, sweep);
      }
      std::cout << '\n';
    }
  }
  return 0;
}
