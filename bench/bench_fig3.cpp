/// \file bench_fig3.cpp
/// \brief Reproduces Fig. 3: outer iterations to convergence for the
/// Poisson (SPD) problem, given a single SDC event injected at every
/// possible aggregate inner iteration, on the first (3a) and last (3b)
/// iteration of the Modified Gram-Schmidt loop, for all three fault
/// classes.
///
/// Paper shape (full scale, failure-free = 9 outer x 25 inner):
///  * 3a, class 1 (x1e+150): large spikes -- entries of the tridiagonal H
///    that should be zero become huge; up to ~2x outer iterations.
///  * 3a, classes 2/3: at most ~2 extra outer iterations, most runs
///    unchanged.
///  * 3b (last MGS step): worst case ~1 extra outer iteration.
/// The detector (|h| <= ||A||_F) would catch every class-1 event, making
/// the top plot impossible (see bench_ablation_detector).
///
/// Flags:
///   --threads N      run each sweep with N worker threads (0 = all
///                    hardware threads; results are identical to serial)
///   --batch N        solve N injection sites in lockstep per worker
///                    (multi-RHS FT-GMRES: one fused SpMM per outer
///                    iteration instead of N SpMVs; results identical)
///   --sweep-json F   instead of the figure series, time one class-1
///                    sweep serial vs parallel vs batched and write the
///                    comparison to F (machine-readable perf trace; the
///                    batched leg uses --batch, default 4).  Besides
///                    wall-clock the trace records the MEASURED operator
///                    traffic from the new LinearOperator counters:
///                    operand columns (inner/outer split; identical in
///                    every mode) and matrix streams per leg, whose
///                    serial/batched ratio is the lockstep reduction.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "experiment/sweep.hpp"
#include "krylov/ft_gmres_batch.hpp"
#include "krylov/mixed.hpp"
#include "krylov/operator.hpp"

using namespace sdcgmres;

namespace {

double run_timed(const sparse::CsrMatrix& A, const la::Vector& b,
                 experiment::SweepConfig config, std::size_t threads,
                 std::size_t batch, experiment::SweepResult& out) {
  config.threads = threads;
  config.batch = batch;
  const auto t0 = std::chrono::steady_clock::now();
  out = experiment::run_injection_sweep(A, b, config);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Serial vs parallel vs batched wall-clock for one representative sweep
/// (class 1, first MGS position), verifying every mode's result is
/// identical.  The batched legs run the lockstep multi-RHS engine: one
/// fused SpMM per outer iteration per block instead of `batch` SpMVs, so
/// (serial_seconds / batched_serial_seconds) isolates the matrix-traffic
/// amortization from sweep-level threading.
int sweep_timing(const sparse::CsrMatrix& A, const la::Vector& b,
                 std::size_t inner, std::size_t threads, std::size_t batch,
                 const char* path) {
  std::size_t hw = 1;
#ifdef _OPENMP
  hw = static_cast<std::size_t>(omp_get_max_threads());
#endif
  if (threads == 0) threads = hw;
  if (threads <= 1) threads = hw; // comparing 1 vs 1 tells nothing
  if (batch <= 1) batch = 4;      // a 1-site block is not a batch

  experiment::SweepConfig config;
  config.solver.inner.max_iters = inner;
  config.solver.outer.tol = 1e-8;
  config.solver.outer.max_outer = 300;
  config.position = sdc::MgsPosition::First;
  config.model = sdc::fault_classes::very_large();
  config.stride = benchcfg::sweep_stride(1);

  experiment::SweepResult serial;
  experiment::SweepResult parallel;
  experiment::SweepResult batched_serial;
  experiment::SweepResult batched;
  const double t_serial = run_timed(A, b, config, 1, 1, serial);
  const double t_parallel = run_timed(A, b, config, threads, 1, parallel);
  const double t_batched_serial =
      run_timed(A, b, config, 1, batch, batched_serial);
  const double t_batched = run_timed(A, b, config, threads, batch, batched);

  // s-step leg: the same sweep with the inner solves staging s=4 matrix
  // powers per block (2 global reductions per block instead of ~2 per
  // column).  The iterates differ from the classical path -- the point of
  // this leg is the synchronization axis: baseline_global_syncs and the
  // per-sweep total drop by >= 2x while the outer-iteration penalty stays
  // within the paper's budget.
  experiment::SweepConfig sstep_config = config;
  sstep_config.solver.inner.s_step = 4;
  experiment::SweepResult sstep_serial;
  const double t_sstep_serial = run_timed(A, b, sstep_config, 1, 1,
                                          sstep_serial);

  // Mixed-plane legs.  (double, int32) compresses the inner solves' CSR
  // indices without touching arithmetic, so its points must be bitwise
  // identical to the default legs; (float, int32) halves the scalar
  // traffic too and is compared by bytes, not by points (float inner
  // solves are a different -- still convergent -- perturbation).
  experiment::SweepConfig mixed_config = config;
  mixed_config.solver.index_width = krylov::IndexWidth::I32;
  experiment::SweepResult d32_batched;
  const double t_d32_batched =
      run_timed(A, b, mixed_config, 1, batch, d32_batched);
  mixed_config.solver.precision = krylov::Precision::Float;
  experiment::SweepResult f32_serial;
  experiment::SweepResult f32_batched;
  const double t_f32_serial = run_timed(A, b, mixed_config, 1, 1, f32_serial);
  const double t_f32_batched =
      run_timed(A, b, mixed_config, 1, batch, f32_batched);

  const auto same = [&serial](const experiment::SweepResult& other) {
    return serial.points == other.points &&
           serial.baseline_outer == other.baseline_outer &&
           serial.baseline_total_inner == other.baseline_total_inner;
  };
  const bool identical = same(parallel) && same(batched_serial) &&
                         same(batched) && same(d32_batched);

  // Measured operator traffic per leg (krylov::OperatorStats, summed over
  // each leg's sweep workers).  The operand-column count is the WORK and
  // is identical in every mode; the stream count is the matrix passes
  // PAID for that work -- the batched legs divide it by ~batch, and
  // that reduction is the whole point of the lockstep engine.  The
  // inner/outer split comes from the per-point inner_applies counters
  // (mode-independent): at inner=25 the inner solves own ~25/26 of the
  // columns, which is why inner-level lockstep matters.
  const std::size_t columns = serial.operator_stats.columns();
  const std::size_t inner_columns = serial.inner_operand_columns();
  const std::size_t serial_streams = serial.operator_stats.streams();
  const std::size_t batched_streams = batched_serial.operator_stats.streams();

  // Bytes actually streamed per leg (scalar = matrix values + operand/
  // result columns, index = row_ptr + col_idx), each counted at the
  // executing plane's own widths.  The headline ratio compares the
  // float/int32 inner plane against the double/int64 one at the same
  // batch: scalars and indices both halve, so the inner-dominated total
  // lands near 0.5x (the reliable outer keeps streaming full doubles).
  const auto bytes_json = [](const experiment::SweepResult& r) {
    std::ostringstream o;
    o << "{ \"scalar\": " << r.operator_stats.scalar_bytes
      << ", \"index\": " << r.operator_stats.index_bytes
      << ", \"total\": " << r.operator_stats.bytes() << " }";
    return o.str();
  };
  const double float_over_double_sweep =
      batched_serial.operator_stats.bytes() > 0
          ? static_cast<double>(f32_batched.operator_stats.bytes()) /
                static_cast<double>(batched_serial.operator_stats.bytes())
          : 0.0;

  // Failure-free lockstep solve legs: the same nested solver, `batch`
  // right-hand sides in lockstep, NO injection.  Both planes converge in
  // the same number of outer iterations here, so the byte ratio isolates
  // the pure streaming cut of the narrowed inner plane (scalars and
  // indices both halve on ~25/26 of the traffic -> ~0.52x).  The sweep
  // ratio above is larger: under class-1 faults the float inner plane
  // needs ~10% more outer iterations to absorb the perturbations, and
  // those extra iterations stream extra (narrowed) bytes.
  const auto solve_bytes = [&](const krylov::FtGmresOptions& opts,
                               std::size_t& outers) {
    const krylov::CsrOperator op(A);
    krylov::FtGmresBatchWorkspace ws;
    const std::vector<la::Vector> bs(batch, b);
    const auto res = krylov::ft_gmres_batch(op, bs, opts, {}, &ws);
    outers = res.empty() ? 0 : res.front().outer_iterations;
    krylov::OperatorStats s = op.stats();
    if (ws.plane != nullptr) s += ws.plane->stats();
    return s;
  };
  std::size_t solve_outers_double = 0;
  std::size_t solve_outers_float = 0;
  const krylov::OperatorStats solve_double =
      solve_bytes(config.solver, solve_outers_double);
  const krylov::OperatorStats solve_float =
      solve_bytes(mixed_config.solver, solve_outers_float);
  const double float_over_double_batched =
      solve_double.bytes() > 0
          ? static_cast<double>(solve_float.bytes()) /
                static_cast<double>(solve_double.bytes())
          : 0.0;
  const auto stats_json = [](const krylov::OperatorStats& s) {
    std::ostringstream o;
    o << "{ \"scalar\": " << s.scalar_bytes << ", \"index\": " << s.index_bytes
      << ", \"total\": " << s.bytes() << " }";
    return o.str();
  };

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"bench_fig3 injection sweep\",\n"
       << "  \"matrix\": \"poisson\",\n"
       << "  \"n\": " << A.rows() << ",\n"
       << "  \"sites\": " << serial.points.size() << ",\n"
       << "  \"hardware_threads\": " << hw << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"batch\": " << batch << ",\n"
       << "  \"serial_seconds\": " << t_serial << ",\n"
       << "  \"parallel_seconds\": " << t_parallel << ",\n"
       << "  \"batched_serial_seconds\": " << t_batched_serial << ",\n"
       << "  \"batched_parallel_seconds\": " << t_batched << ",\n"
       << "  \"speedup\": " << (t_parallel > 0.0 ? t_serial / t_parallel : 0.0)
       << ",\n"
       << "  \"batched_speedup_serial\": "
       << (t_batched_serial > 0.0 ? t_serial / t_batched_serial : 0.0) << ",\n"
       << "  \"batched_speedup\": "
       << (t_batched > 0.0 ? t_serial / t_batched : 0.0) << ",\n"
       << "  \"operand_columns\": " << columns << ",\n"
       << "  \"inner_operand_columns\": " << inner_columns << ",\n"
       << "  \"outer_operand_columns\": " << (columns - inner_columns)
       << ",\n"
       << "  \"serial_matrix_streams\": " << serial_streams << ",\n"
       << "  \"parallel_matrix_streams\": "
       << parallel.operator_stats.streams() << ",\n"
       << "  \"batched_serial_matrix_streams\": " << batched_streams << ",\n"
       << "  \"batched_parallel_matrix_streams\": "
       << batched.operator_stats.streams() << ",\n"
       << "  \"stream_reduction\": "
       << (batched_streams > 0
               ? static_cast<double>(serial_streams) /
                     static_cast<double>(batched_streams)
               : 0.0)
       << ",\n"
       << "  \"bytes\": {\n"
       << "    \"serial\": " << bytes_json(serial) << ",\n"
       << "    \"parallel\": " << bytes_json(parallel) << ",\n"
       << "    \"batched_serial\": " << bytes_json(batched_serial) << ",\n"
       << "    \"batched_parallel\": " << bytes_json(batched) << ",\n"
       << "    \"d32_batched\": " << bytes_json(d32_batched) << ",\n"
       << "    \"float_serial\": " << bytes_json(f32_serial) << ",\n"
       << "    \"float_batched\": " << bytes_json(f32_batched) << ",\n"
       << "    \"float_over_double_sweep_batched\": " << float_over_double_sweep
       << ",\n"
       << "    \"solve_double_batched\": " << stats_json(solve_double) << ",\n"
       << "    \"solve_float_batched\": " << stats_json(solve_float) << ",\n"
       << "    \"solve_outer_iterations\": { \"double\": "
       << solve_outers_double << ", \"float\": " << solve_outers_float
       << " },\n"
       << "    \"float_over_double_batched\": " << float_over_double_batched
       << "\n  },\n"
       // The mixed legs run at threads=1 (like the serial/batched_serial
       // references): on a 1-core container every leg is effectively
       // serial anyway, so bytes -- not wall-clock -- is the comparable
       // number here.
       << "  \"mixed\": {\n"
       << "    \"d32_batched_seconds\": " << t_d32_batched << ",\n"
       << "    \"d32_identical\": "
       << (same(d32_batched) ? "true" : "false") << ",\n"
       << "    \"float_serial_seconds\": " << t_f32_serial << ",\n"
       << "    \"float_batched_seconds\": " << t_f32_batched << ",\n"
       << "    \"float_baseline_outer\": " << f32_serial.baseline_outer
       << ",\n"
       << "    \"float_failed_runs\": " << f32_serial.failed_runs() << ",\n"
       << "    \"float_max_outer_increase\": "
       << f32_serial.max_outer_increase() << "\n  },\n"
       // Global-reduction accounting (the s-step axis): counts are
       // deterministic, so the serial numbers speak for every mode.
       << "  \"syncs\": {\n"
       << "    \"baseline_global_syncs\": " << serial.baseline_global_syncs
       << ",\n"
       << "    \"total_global_syncs\": " << serial.total_global_syncs()
       << ",\n"
       << "    \"sstep\": " << sstep_config.solver.inner.s_step << ",\n"
       << "    \"sstep_seconds\": " << t_sstep_serial << ",\n"
       << "    \"sstep_baseline_global_syncs\": "
       << sstep_serial.baseline_global_syncs << ",\n"
       << "    \"sstep_total_global_syncs\": "
       << sstep_serial.total_global_syncs() << ",\n"
       << "    \"sstep_baseline_outer\": " << sstep_serial.baseline_outer
       << ",\n"
       << "    \"sync_reduction\": "
       << (sstep_serial.total_global_syncs() > 0
               ? static_cast<double>(serial.total_global_syncs()) /
                     static_cast<double>(sstep_serial.total_global_syncs())
               : 0.0)
       << "\n  },\n"
       // Guard trips and recovery activity (serial leg; identical in every
       // mode).  This trace runs no detector and no guards, so nonzero
       // counters here flag a determinism bug, not a slow machine.
       << "  \"guard\": {\n"
       << "    \"diverged\": " << serial.diverged_runs() << ",\n"
       << "    \"deadline_exceeded\": " << serial.deadline_exceeded_runs()
       << "\n  },\n"
       << "  \"recovery\": {\n"
       << "    \"retried_reliable\": " << serial.retried_reliable() << ",\n"
       << "    \"restarted_outer\": " << serial.restarted_outer() << "\n  },\n"
       << "  \"identical_results\": " << (identical ? "true" : "false") << "\n"
       << "}\n";
  std::cout << json.str();
  if (std::ofstream out(path); out) {
    out << json.str();
  } else {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  return identical ? 0 : 2;
}

} // namespace

int main(int argc, char** argv) {
  benchcfg::print_mode_banner("bench_fig3 (Poisson, Figs. 3a/3b)");
  const auto A = benchcfg::poisson_matrix();
  const auto b = benchcfg::poisson_rhs(A);
  const std::size_t inner = 25;
  const benchcfg::CliArgs cli =
      benchcfg::parse_cli(argc, argv, /*value_flags=*/{"batch"});
  const std::size_t threads = cli.threads;
  const std::size_t batch = cli.spec.get_size("batch", 1);

  if (!cli.json.empty()) {
    return sweep_timing(A, b, inner, threads, batch, cli.json.c_str());
  }

  const struct {
    const char* name;
    sdc::FaultModel model;
  } classes[] = {
      {"h x 1e+150 (class 1)", sdc::fault_classes::very_large()},
      {"h x 10^-0.5 (class 2)", sdc::fault_classes::slightly_smaller()},
      {"h x 1e-300 (class 3)", sdc::fault_classes::nearly_zero()},
  };
  const struct {
    const char* name;
    sdc::MgsPosition position;
  } positions[] = {
      {"Fig. 3a: SDC on the FIRST iteration of the MGS loop",
       sdc::MgsPosition::First},
      {"Fig. 3b: SDC on the LAST iteration of the MGS loop",
       sdc::MgsPosition::Last},
  };

  for (const auto& pos : positions) {
    std::cout << "--------------------------------------------------------\n"
              << pos.name << "\n"
              << "--------------------------------------------------------\n";
    for (const auto& cls : classes) {
      experiment::SweepConfig config;
      config.solver.inner.max_iters = inner;
      config.solver.outer.tol = 1e-8;
      config.solver.outer.max_outer = 300;
      config.position = pos.position;
      config.model = cls.model;
      config.stride = benchcfg::sweep_stride(1);
      config.threads = threads;
      // No silent batch=0 promotion: the library's validation rejects it.
      config.batch = batch;
      const auto sweep = experiment::run_injection_sweep(A, b, config);
      experiment::print_sweep_series(std::cout, cls.name, sweep, inner);
      experiment::print_sweep_summary(std::cout, cls.name, sweep);
      if (const std::string dir = benchcfg::csv_dir(); !dir.empty()) {
        std::ostringstream path;
        path << dir << "/fig3_"
             << (pos.position == sdc::MgsPosition::First ? "first" : "last")
             << "_" << (&cls - &classes[0] + 1) << ".csv";
        std::ofstream out(path.str());
        if (out) experiment::write_sweep_csv(out, sweep);
      }
      std::cout << '\n';
    }
  }
  return 0;
}
