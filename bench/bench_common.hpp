#pragma once
/// \file bench_common.hpp
/// \brief Shared setup for the experiment harnesses.
///
/// Every bench binary honors the environment variable SDCGMRES_FULL=1 to
/// run at the paper's scale (Poisson 100x100 grid; circuit 25,187 nodes;
/// every injection site).  The default configuration preserves the sweep
/// structure at laptop-friendly sizes so `for b in build/bench/*; do $b;
/// done` finishes in minutes; the header of each run states which mode is
/// active.

#include <cstdlib>
#include <iostream>
#include <string>

#include "gen/circuit.hpp"
#include "gen/poisson.hpp"
#include "la/blas1.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::benchcfg {

/// True when SDCGMRES_FULL=1 requests paper-scale runs.
inline bool full_scale() {
  const char* env = std::getenv("SDCGMRES_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// The paper's first matrix: gallery('poisson', 100) at full scale.
inline sparse::CsrMatrix poisson_matrix() {
  return gen::poisson2d(full_scale() ? 100 : 40);
}

/// The paper's second matrix (synthetic substitute, see DESIGN.md §4).
inline sparse::CsrMatrix circuit_matrix() {
  gen::CircuitOptions opts;
  opts.nodes = full_scale() ? 25187 : 2000;
  return gen::circuit_like(opts);
}

/// Right-hand side for the Poisson experiments (b = 1, as for a constant
/// source term).
inline la::Vector poisson_rhs(const sparse::CsrMatrix& A) {
  return la::ones(A.rows());
}

/// Right-hand side for the circuit experiments: b = A*1.  With
/// kappa ~ 1e13 an arbitrary rhs would demand solution components of size
/// ~1e13, beyond what double-precision residuals can certify to 1e-8; a
/// consistent rhs keeps the solve in the regime the paper ran in (see
/// EXPERIMENTS.md).
inline la::Vector circuit_rhs(const sparse::CsrMatrix& A) {
  return A.apply(la::ones(A.rows()));
}

/// Injection-site stride for the sweeps (1 = every site, the paper's
/// protocol; the default samples to bound runtime on the bigger sweeps).
/// SDCGMRES_STRIDE overrides both modes, e.g. SDCGMRES_FULL=1
/// SDCGMRES_STRIDE=8 runs paper-scale matrices with sampled sites.
inline std::size_t sweep_stride(std::size_t dflt) {
  if (const char* env = std::getenv("SDCGMRES_STRIDE")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return full_scale() ? 1 : dflt;
}

/// Directory for CSV dumps of every sweep (empty = disabled).  Set
/// SDCGMRES_CSV_DIR=path to save `<bench>_<series>.csv` files alongside
/// the printed output, for external plotting of the figures.
inline std::string csv_dir() {
  const char* env = std::getenv("SDCGMRES_CSV_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

/// Value following \p flag on the command line, or nullptr.
inline const char* arg_value(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return nullptr;
}

/// Worker-thread count from `--threads N` (default 1 = serial).  Passed to
/// SweepConfig::threads / the bench's own parallel loops; 0 means "all
/// hardware threads".
inline std::size_t threads_arg(int argc, char** argv) {
  if (const char* v = arg_value(argc, argv, "--threads")) {
    return static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
  }
  return 1;
}

/// Print the standard mode banner.
inline void print_mode_banner(const char* bench_name) {
  std::cout << "=== " << bench_name << " ===\n"
            << "mode: "
            << (full_scale() ? "FULL (paper scale; SDCGMRES_FULL=1)"
                             : "default (reduced scale; set SDCGMRES_FULL=1 "
                               "for paper scale)")
            << "\n\n";
}

} // namespace sdcgmres::benchcfg
