#pragma once
/// \file bench_common.hpp
/// \brief Shared setup for the experiment harnesses.
///
/// Every bench binary honors the environment variable SDCGMRES_FULL=1 to
/// run at the paper's scale (Poisson 100x100 grid; circuit 25,187 nodes;
/// every injection site).  The default configuration preserves the sweep
/// structure at laptop-friendly sizes so `for b in build/bench/*; do $b;
/// done` finishes in minutes; the header of each run states which mode is
/// active.

#include <algorithm>
#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "experiment/scenario_spec.hpp"
#include "gen/circuit.hpp"
#include "gen/poisson.hpp"
#include "la/blas1.hpp"
#include "sparse/csr.hpp"

namespace sdcgmres::benchcfg {

/// True when SDCGMRES_FULL=1 requests paper-scale runs.
inline bool full_scale() {
  const char* env = std::getenv("SDCGMRES_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// The paper's first matrix: gallery('poisson', 100) at full scale.
inline sparse::CsrMatrix poisson_matrix() {
  return gen::poisson2d(full_scale() ? 100 : 40);
}

/// The paper's second matrix (synthetic substitute, see DESIGN.md §4).
inline sparse::CsrMatrix circuit_matrix() {
  gen::CircuitOptions opts;
  opts.nodes = full_scale() ? 25187 : 2000;
  return gen::circuit_like(opts);
}

/// Right-hand side for the Poisson experiments (b = 1, as for a constant
/// source term).
inline la::Vector poisson_rhs(const sparse::CsrMatrix& A) {
  return la::ones(A.rows());
}

/// Right-hand side for the circuit experiments: b = A*1.  With
/// kappa ~ 1e13 an arbitrary rhs would demand solution components of size
/// ~1e13, beyond what double-precision residuals can certify to 1e-8; a
/// consistent rhs keeps the solve in the regime the paper ran in (see
/// EXPERIMENTS.md).
inline la::Vector circuit_rhs(const sparse::CsrMatrix& A) {
  return A.apply(la::ones(A.rows()));
}

/// Injection-site stride for the sweeps (1 = every site, the paper's
/// protocol; the default samples to bound runtime on the bigger sweeps).
/// SDCGMRES_STRIDE overrides both modes, e.g. SDCGMRES_FULL=1
/// SDCGMRES_STRIDE=8 runs paper-scale matrices with sampled sites.
inline std::size_t sweep_stride(std::size_t dflt) {
  if (const char* env = std::getenv("SDCGMRES_STRIDE")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return full_scale() ? 1 : dflt;
}

/// Directory for CSV dumps of every sweep (empty = disabled).  Set
/// SDCGMRES_CSV_DIR=path to save `<bench>_<series>.csv` files alongside
/// the printed output, for external plotting of the figures.
inline std::string csv_dir() {
  const char* env = std::getenv("SDCGMRES_CSV_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

/// Parsed bench/example command line, built on the same
/// experiment::ScenarioSpec parser as the `sdc_run` example so every
/// harness shares one flag vocabulary: `--threads N`, `--json F` (or the
/// legacy `--sweep-json F`), `--n N`, any bench-specific flags the caller
/// declares, plus free-form `key=value` scenario tokens.  Tokens the
/// parser does not recognize are collected for passthrough (argv[0]
/// first), which is how bench_kernels forwards --benchmark_* arguments.
struct CliArgs {
  experiment::ScenarioSpec spec; ///< every recognized flag, as key=value
  std::vector<char*> passthrough; ///< unrecognized tokens, argv[0] first
  std::size_t threads = 1; ///< worker threads for sweeps / parallel loops
                           ///< (0 = all hardware threads)
  std::string json;        ///< machine-readable output path ("" = off)
  std::size_t n = 0;       ///< problem-size override (0 = bench default)
};

/// Parse \p argv.  \p value_flags declares bench-specific `--flag value`
/// pairs and \p bool_flags valueless `--flag` switches, both stored in
/// the spec under the flag name (booleans as "1"); `--threads/--json/
/// --sweep-json/--n` are always recognized.  Malformed values exit(1)
/// with a message (bench binaries have no caller to rethrow to).
inline CliArgs parse_cli(int argc, char** argv,
                         std::initializer_list<std::string_view> value_flags = {},
                         std::initializer_list<std::string_view> bool_flags = {}) {
  CliArgs args;
  args.passthrough.push_back(argv[0]);
  const auto known = [&](std::string_view name) {
    static constexpr std::string_view shared[] = {"threads", "json",
                                                  "sweep-json", "n"};
    return std::find(std::begin(shared), std::end(shared), name) !=
               std::end(shared) ||
           std::find(value_flags.begin(), value_flags.end(), name) !=
               value_flags.end();
  };
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view tok = argv[i];
      if (tok.rfind("--", 0) == 0) {
        const std::string_view name = tok.substr(2);
        if (std::find(bool_flags.begin(), bool_flags.end(), name) !=
            bool_flags.end()) {
          args.spec.set(name, "1");
        } else if (known(name) && i + 1 < argc) {
          args.spec.set(name, argv[++i]);
        } else if (known(name)) {
          std::cerr << tok << " requires a value\n";
          std::exit(1);
        } else {
          args.passthrough.push_back(argv[i]); // e.g. --benchmark_filter=...
        }
      } else if (tok.find('=') != std::string_view::npos) {
        args.spec.merge(experiment::ScenarioSpec::parse(tok));
      } else {
        args.passthrough.push_back(argv[i]);
      }
    }
    args.threads = args.spec.get_size("threads", 1);
    args.json = args.spec.get("json", args.spec.get("sweep-json"));
    args.n = args.spec.get_size("n", 0);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    std::exit(1);
  }
  return args;
}

/// Print the standard mode banner.
inline void print_mode_banner(const char* bench_name) {
  std::cout << "=== " << bench_name << " ===\n"
            << "mode: "
            << (full_scale() ? "FULL (paper scale; SDCGMRES_FULL=1)"
                             : "default (reduced scale; set SDCGMRES_FULL=1 "
                               "for paper scale)")
            << "\n\n";
}

} // namespace sdcgmres::benchcfg
