/// \file bench_fig4.cpp
/// \brief Reproduces Fig. 4: outer iterations to convergence for the
/// nonsymmetric ill-conditioned circuit problem, given a single SDC event
/// at every aggregate inner iteration, first (4a) and last (4b) MGS
/// position, all three fault classes.
///
/// Paper shape (full scale, failure-free = 28 outer x 25 inner):
///  * 4a, class 1: at most ~2 extra outer iterations (all h may be
///    nonzero, so the relative damage of a large fault is bounded).
///  * 4a, classes 2/3: the first few inner iterations of the FIRST inner
///    solve are extremely vulnerable (up to ~4 extra outer iterations);
///    elsewhere at most ~1.
///  * 4b: extra iterations in more sites, but no sharp early spike.

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "experiment/sweep.hpp"

using namespace sdcgmres;

int main() {
  benchcfg::print_mode_banner("bench_fig4 (circuit-like, Figs. 4a/4b)");
  const auto A = benchcfg::circuit_matrix();
  const auto b = benchcfg::circuit_rhs(A);
  const std::size_t inner = 25;
  std::cout << "rhs: b = A*ones (consistent system; see EXPERIMENTS.md)\n\n";

  const struct {
    const char* name;
    sdc::FaultModel model;
  } classes[] = {
      {"h x 1e+150 (class 1)", sdc::fault_classes::very_large()},
      {"h x 10^-0.5 (class 2)", sdc::fault_classes::slightly_smaller()},
      {"h x 1e-300 (class 3)", sdc::fault_classes::nearly_zero()},
  };
  const struct {
    const char* name;
    sdc::MgsPosition position;
  } positions[] = {
      {"Fig. 4a: SDC on the FIRST iteration of the MGS loop",
       sdc::MgsPosition::First},
      {"Fig. 4b: SDC on the LAST iteration of the MGS loop",
       sdc::MgsPosition::Last},
  };

  for (const auto& pos : positions) {
    std::cout << "--------------------------------------------------------\n"
              << pos.name << "\n"
              << "--------------------------------------------------------\n";
    for (const auto& cls : classes) {
      experiment::SweepConfig config;
      config.solver.inner.max_iters = inner;
      config.solver.outer.tol = 1e-8;
      config.solver.outer.max_outer = 500;
      config.position = pos.position;
      config.model = cls.model;
      config.stride = benchcfg::sweep_stride(4);
      const auto sweep = experiment::run_injection_sweep(A, b, config);
      experiment::print_sweep_series(std::cout, cls.name, sweep, inner);
      experiment::print_sweep_summary(std::cout, cls.name, sweep);
      if (const std::string dir = benchcfg::csv_dir(); !dir.empty()) {
        std::ostringstream path;
        path << dir << "/fig4_"
             << (pos.position == sdc::MgsPosition::First ? "first" : "last")
             << "_" << (&cls - &classes[0] + 1) << ".csv";
        std::ofstream out(path.str());
        if (out) experiment::write_sweep_csv(out, sweep);
      }
      std::cout << '\n';
    }
  }
  return 0;
}
