/// \file bench_ablation_abft.cpp
/// \brief The paper's prior-work comparison quantified (Section III-B):
/// invariant-bound detection (this paper) vs Chen-style Online-ABFT
/// recomputation (its reference [18]).
///
/// Two axes:
///  1. *coverage* -- which fault classes each scheme detects, swept over
///     the FT-GMRES injection sites of Fig. 3;
///  2. *cost* -- wall time of a fixed 25-iteration inner solve with no
///     hook, with the bound detector, and with the ABFT monitor at check
///     periods 1 and 5.
///
/// Expected trade (and the paper's argument): the bound check is
/// effectively free and catches exactly the theory-violating faults; the
/// ABFT orthogonality check also catches the small (class-2/3) faults the
/// bound provably cannot see, but pays one extra SpMV + O(j) dot products
/// per check -- precisely the "additional computation and parallel
/// communication" the paper sets out to avoid.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "experiment/sweep.hpp"
#include "krylov/gmres.hpp"
#include "sdc/abft.hpp"
#include "sdc/detector.hpp"
#include "sdc/injection.hpp"

using namespace sdcgmres;

namespace {

/// Fraction of fired faults each scheme detects over a site sweep.
void coverage_sweep(const sparse::CsrMatrix& A, const la::Vector& b,
                    const sdc::FaultModel& model, const char* fault_name,
                    std::size_t stride) {
  const krylov::CsrOperator op(A);
  krylov::FtGmresOptions solver;
  solver.outer.tol = 1e-8;
  solver.outer.max_outer = 300;
  const auto baseline = krylov::ft_gmres(A, b, solver);

  std::size_t fired = 0, bound_hits = 0, abft_hits = 0;
  for (std::size_t site = 0; site < baseline.total_inner_iterations;
       site += stride) {
    sdc::FaultCampaign campaign(
        sdc::InjectionPlan::hessenberg(site, sdc::MgsPosition::Last, model));
    sdc::HessenbergBoundDetector bound(A.frobenius_norm());
    sdc::AbftMonitor abft(op);
    krylov::HookChain chain({&campaign, &bound, &abft});
    (void)krylov::ft_gmres(A, b, solver, &chain);
    if (!campaign.fired()) continue;
    ++fired;
    if (bound.triggered()) ++bound_hits;
    if (abft.triggered()) ++abft_hits;
  }
  std::cout << "  " << fault_name << ": fired " << fired
            << ", bound detector caught " << bound_hits
            << ", ABFT caught " << abft_hits << "\n";
}

double time_inner_solve(const krylov::LinearOperator& op, const la::Vector& b,
                        krylov::ArnoldiHook* hook, int repeats) {
  krylov::GmresOptions opts;
  opts.max_iters = 25;
  opts.tol = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    const auto res =
        krylov::gmres(op, b, la::Vector(op.cols()), opts, hook, 0);
    (void)res;
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         repeats;
}

} // namespace

int main() {
  benchcfg::print_mode_banner(
      "bench_ablation_abft (bound detector vs Online-ABFT recomputation)");
  const auto A = benchcfg::poisson_matrix();
  const auto b = benchcfg::poisson_rhs(A);
  const krylov::CsrOperator op(A);
  const std::size_t stride = benchcfg::sweep_stride(5);

  std::cout << "Coverage over Fig. 3-style sweeps (fault on the last MGS "
               "step):\n";
  coverage_sweep(A, b, sdc::fault_classes::very_large(),
                 "h x 1e+150 (class 1)", stride);
  coverage_sweep(A, b, sdc::fault_classes::slightly_smaller(),
                 "h x 10^-0.5 (class 2)", stride);
  coverage_sweep(A, b, sdc::fault_classes::nearly_zero(),
                 "h x 1e-300 (class 3)", stride);

  std::cout << "\nCost of one 25-iteration inner solve (ms, averaged):\n";
  const int repeats = benchcfg::full_scale() ? 20 : 50;
  std::cout << "  no checking:            "
            << time_inner_solve(op, b, nullptr, repeats) << "\n";
  sdc::HessenbergBoundDetector bound(A.frobenius_norm());
  std::cout << "  bound detector:         "
            << time_inner_solve(op, b, &bound, repeats) << "\n";
  sdc::AbftOptions every;
  sdc::AbftMonitor abft1(op, every);
  std::cout << "  ABFT (check period 1):  "
            << time_inner_solve(op, b, &abft1, repeats) << "\n";
  sdc::AbftOptions sparse_checks;
  sparse_checks.check_period = 5;
  sdc::AbftMonitor abft5(op, sparse_checks);
  std::cout << "  ABFT (check period 5):  "
            << time_inner_solve(op, b, &abft5, repeats) << "\n";

  std::cout
      << "\nReading: the bound check is free and catches every fault that\n"
         "violates the theory (class 1); ABFT's orthogonality check also\n"
         "catches class 2/3 faults on nonzero coefficients, but pays an\n"
         "extra SpMV plus O(j) dot products per checked iteration -- the\n"
         "communication/computation the paper's detector avoids.\n";
  return 0;
}
