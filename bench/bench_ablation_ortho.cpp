/// \file bench_ablation_ortho.cpp
/// \brief Ablation for Section VII-E-1 (the paper's future work,
/// implemented here): does extra robustness in the first inner solve --
/// CGS2 re-orthogonalization -- remove the early-solve vulnerability?
///
/// Mechanism: a single multiplicative fault in a first-pass projection
/// coefficient leaves the basis vector under/over-projected; CGS2's silent
/// second pass recomputes the residual projection, so both the basis
/// vector and the *total* stored coefficient come out correct -- for
/// *moderate* faults.  For 1e150-scaled faults the second-pass correction
/// cancels catastrophically and leaves roundoff garbage instead (see the
/// Reading note printed at the end) -- measuring exactly this boundary is
/// the point of the ablation.
///
/// Compared configurations, on the class-1 and class-2 sweeps restricted
/// to the FIRST inner solve (the paper's "universally bad" region):
///   * MGS everywhere (the paper's baseline)
///   * MGS + robust_first_inner (CGS2 in inner solve 0 only)
///   * CGS2 everywhere (upper bound on the mitigation)

#include <iostream>

#include "bench_common.hpp"
#include "experiment/report.hpp"
#include "experiment/sweep.hpp"
#include "krylov/orthogonalize.hpp"

using namespace sdcgmres;

namespace {

struct Config {
  const char* name;
  krylov::Orthogonalization ortho;
  bool robust_first;
};

void run(const sparse::CsrMatrix& A, const la::Vector& b,
         const sdc::FaultModel& model, const char* fault_name) {
  const Config configs[] = {
      {"MGS everywhere          ", krylov::Orthogonalization::MGS, false},
      {"MGS + robust first inner", krylov::Orthogonalization::MGS, true},
      {"CGS2 everywhere         ", krylov::Orthogonalization::CGS2, false},
  };
  std::cout << "fault: " << fault_name
            << ", injected into the FIRST inner solve only\n";
  for (const Config& cfg : configs) {
    experiment::SweepConfig config;
    config.solver.inner.max_iters = 25;
    config.solver.inner.ortho = cfg.ortho;
    config.solver.robust_first_inner = cfg.robust_first;
    config.solver.outer.tol = 1e-8;
    config.solver.outer.max_outer = 400;
    config.position = sdc::MgsPosition::First;
    config.model = model;
    config.stride = 1;
    config.site_limit = 25; // the first inner solve's sites only
    const auto sweep = experiment::run_injection_sweep(A, b, config);
    experiment::print_sweep_summary(std::cout, std::string("  ") + cfg.name,
                                    sweep);
  }
  std::cout << '\n';
}

} // namespace

int main() {
  benchcfg::print_mode_banner(
      "bench_ablation_ortho (robust first inner solve, Section VII-E-1)");
  const auto circuit = benchcfg::circuit_matrix();
  const auto cb = benchcfg::circuit_rhs(circuit);
  run(circuit, cb, sdc::fault_classes::very_large(), "h x 1e+150 (class 1)");
  run(circuit, cb, sdc::fault_classes::slightly_smaller(),
      "h x 10^-0.5 (class 2)");

  const auto poisson = benchcfg::poisson_matrix();
  const auto pb = benchcfg::poisson_rhs(poisson);
  run(poisson, pb, sdc::fault_classes::very_large(), "h x 1e+150 (class 1)");

  std::cout
      << "Reading: CGS2's second pass heals *moderate* multiplicative\n"
         "faults (class 2/3): the re-projection restores both the basis\n"
         "vector and the total coefficient, removing the first-solve\n"
         "penalty.  For class-1 (1e150x) faults the correction cancels\n"
         "catastrophically (the healed vector is ~1e134*eps garbage), so\n"
         "re-orthogonalization does NOT replace the invariant detector --\n"
         "the two mechanisms are complementary: CGS2 heals what the\n"
         "detector cannot see, the detector catches what CGS2 cannot\n"
         "heal.\n";
  return 0;
}
